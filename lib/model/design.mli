open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy

(** A complete storage system design: workload + protection hierarchy +
    business requirements.

    The design maps every technique's abstract demands (§3.2.3) onto the
    concrete devices and interconnects of the hierarchy, yielding the
    labeled per-device demand sets consumed by the utilization, recovery
    and cost models. *)

type t = private {
  name : string;
  workload : Workload.t;
  hierarchy : Hierarchy.t;
  business : Business.t;
  background : (string * Demand.labeled list) list;
      (** demands other tenants place on this design's devices (device name
          -> labeled demands); they consume capacity and bandwidth but are
          not billed to this design (see {!Portfolio}) *)
  fingerprint_memo : string option Atomic.t;
      (** internal memo backing {!fingerprint}; not a design parameter and
          excluded from the fingerprint itself *)
}

val make :
  name:string ->
  workload:Workload.t ->
  hierarchy:Hierarchy.t ->
  business:Business.t ->
  ?background:(string * Demand.labeled list) list ->
  unit ->
  t

val primary_raid : t -> Raid.t
(** RAID organization of the primary array (from the level-0 technique). *)

val devices : t -> Device.t list
(** The distinct devices of the hierarchy, in first-appearance order
    (identity by device name). *)

val device : t -> string -> Device.t option

val demands_on : t -> Device.t -> Demand.labeled list
(** This design's own normal-mode demands landing on one device, labeled
    by technique: a level's [on_target] lands on its own device, its
    [on_source] on the previous level's device. Colocated techniques
    (split mirror, snapshot) are charged the primary array's RAID capacity
    factor; remote-mirror destinations are charged logical capacity,
    matching §3.2.3. Cost allocation uses this set.

    {b Note}: utilization, overcommit validation and recovery-bandwidth
    calculations use {!loaded_demands_on}, which also includes background
    tenants. *)

val loaded_demands_on : t -> Device.t -> Demand.labeled list
(** {!demands_on} plus any background demands registered for the device:
    the full load the hardware actually carries. *)

val link_demand : t -> Interconnect.t -> Rate.t
(** Sustained normal-mode bandwidth demand on an interconnect. *)

val primary_technique_of_device : t -> Device.t -> string
(** Name of the technique that "owns" a device for cost allocation
    (§3.3.5): the lowest hierarchy level hosted on it. *)

val fingerprint : t -> string
(** A canonical hex digest of the design's entire structure (workload,
    hierarchy, business requirements, background load). Structurally equal
    designs always share a fingerprint, however they were constructed;
    designs differing in any parameter (almost surely) do not. Used with
    {!Scenario.fingerprint} to key the evaluation memo-cache
    ({!Eval_cache}). *)

val validate : t -> (unit, string list) result
(** Full design validation: hierarchy warnings are not errors, but the
    following are: any device overcommitted in capacity or bandwidth
    (§3.3.1's global check), any mirror link with less aggregate
    bandwidth than the mode requires (peak rate for synchronous mirrors),
    and any interconnect whose aggregate propagation demand across the
    levels sharing it exceeds its bandwidth.

    This is the evaluation-time shim behind {!Evaluate.run}'s [errors];
    the full static analyzer — same error conditions plus warnings,
    advisories, scenario rules, stable codes and structured locations —
    is [Storage_lint.check] (which layers above this library). *)

val pp : t Fmt.t
