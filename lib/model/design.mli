open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy

(** A complete storage system design: workload + protection hierarchy +
    business requirements.

    The design maps every technique's abstract demands (§3.2.3) onto the
    concrete devices and interconnects of the hierarchy, yielding the
    labeled per-device demand sets consumed by the utilization, recovery
    and cost models. *)

type derived
(** Everything the evaluation pipeline derives from the design's structure
    (demand placements, per-device loads and utilizations, link demands,
    validation, per-level lag tables), computed once per design on first
    access and memoized. Purely an acceleration: accessors behave as if
    they recomputed from scratch on every call. *)

type t = private {
  name : string;
  workload : Workload.t;
  hierarchy : Hierarchy.t;
  business : Business.t;
  background : (string * Demand.labeled list) list;
      (** demands other tenants place on this design's devices (device name
          -> labeled demands); they consume capacity and bandwidth but are
          not billed to this design (see {!Portfolio}) *)
  fingerprint_memo : string option Atomic.t;
      (** internal memo backing {!fingerprint}; not a design parameter and
          excluded from the fingerprint itself *)
  derived_memo : derived option Atomic.t;
      (** internal memo backing the derived-data accessors; like
          [fingerprint_memo], not a design parameter. The whole record is
          filled in one shot, so any two designs both touched by any
          accessor carry structurally equal memo states — which keeps the
          byte-identity test suites honest when designs are marshaled. *)
}

val make :
  name:string ->
  workload:Workload.t ->
  hierarchy:Hierarchy.t ->
  business:Business.t ->
  ?background:(string * Demand.labeled list) list ->
  unit ->
  t

val strip : t -> t
(** A structurally equal copy with empty memo fields: same fingerprint,
    same behaviour, but none of the derived data retained. Long-lived
    accumulators (e.g. a streaming search's bounded frontier) hold stripped
    copies so that per-design scratch data does not pile up in the live
    set; accessors on the copy simply recompute (and re-memoize) on
    demand. *)

val primary_raid : t -> Raid.t
(** RAID organization of the primary array (from the level-0 technique). *)

val devices : t -> Device.t list
(** The distinct devices of the hierarchy, in first-appearance order
    (identity by device name). *)

val device : t -> string -> Device.t option

val demands_on : t -> Device.t -> Demand.labeled list
(** This design's own normal-mode demands landing on one device, labeled
    by technique: a level's [on_target] lands on its own device, its
    [on_source] on the previous level's device. Colocated techniques
    (split mirror, snapshot) are charged the primary array's RAID capacity
    factor; remote-mirror destinations are charged logical capacity,
    matching §3.2.3. Cost allocation uses this set.

    {b Note}: utilization, overcommit validation and recovery-bandwidth
    calculations use {!loaded_demands_on}, which also includes background
    tenants. *)

val loaded_demands_on : t -> Device.t -> Demand.labeled list
(** {!demands_on} plus any background demands registered for the device:
    the full load the hardware actually carries. *)

val device_utilization : t -> Device.t -> Device.utilization
(** [Device.utilization dev (loaded_demands_on t dev)], memoized per
    design: the normal-mode utilization the evaluation, validation and
    lint layers all need for every device. *)

val link_demand : t -> Interconnect.t -> Rate.t
(** Sustained normal-mode bandwidth demand on an interconnect. *)

val worst_lag : t -> int -> Duration.t
(** Memoized {!Storage_hierarchy.Hierarchy.worst_lag} of the design's
    hierarchy. Raises [Invalid_argument] on an out-of-range level. *)

val guaranteed_range : t -> int -> Age_range.t option
(** Memoized {!Storage_hierarchy.Hierarchy.guaranteed_range}. *)

val rp_interval_min : t -> int -> Duration.t
(** Memoized {!Storage_protection.Schedule.rp_interval_min} of the level's
    schedule; {!Duration.zero} for level 0 (the primary has no schedule). *)

val primary_technique_of_device : t -> Device.t -> string
(** Name of the technique that "owns" a device for cost allocation
    (§3.3.5): the lowest hierarchy level hosted on it. *)

val fingerprint : t -> string
(** A canonical 128-bit hex key over the design's entire structure
    (workload, hierarchy, business requirements, background load), computed
    by an allocation-light {!Storage_units.Struct_hash} walk (no Marshal
    round-trip) and memoized. Structurally equal designs always share a
    fingerprint, however they were constructed; designs differing in any
    parameter (almost surely) do not. Used with {!Scenario.fingerprint} to
    key the evaluation memo-cache ({!Eval_cache}) — and computed only when
    such a cache is actually in play: nothing on the cache-less evaluation
    path calls it. *)

val validate : t -> (unit, string list) result
(** Full design validation: hierarchy warnings are not errors, but the
    following are: any device overcommitted in capacity or bandwidth
    (§3.3.1's global check), any mirror link with less aggregate
    bandwidth than the mode requires (peak rate for synchronous mirrors),
    and any interconnect whose aggregate propagation demand across the
    levels sharing it exceeds its bandwidth.

    This is the evaluation-time shim behind {!Evaluate.run}'s [errors];
    the full static analyzer — same error conditions plus warnings,
    advisories, scenario rules, stable codes and structured locations —
    is [Storage_lint.check] (which layers above this library). *)

val pp : t Fmt.t
