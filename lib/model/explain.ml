open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy

let add = Buffer.add_string
let addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let level_name design j =
  Technique.name (Hierarchy.level design.Design.hierarchy j).Hierarchy.technique

let survivors_section buf design scenario =
  let h = design.Design.hierarchy in
  let scope = scenario.Scenario.scope in
  addf buf "Failure scope: %s.\n" (Location.scope_name scope);
  if Location.corrupts_object scope then
    add buf
      "The object's current contents are corrupt, so the primary copy \
       cannot serve the recovery.\n";
  List.iteri
    (fun j (l : Hierarchy.level) ->
      let destroyed =
        Location.destroys scope ~device_name:l.Hierarchy.device.Device.name
          l.Hierarchy.device.Device.location
      in
      if destroyed then
        addf buf "  level %d (%s on %s): destroyed.\n" j (level_name design j)
          l.Hierarchy.device.Device.name)
    (Hierarchy.levels h);
  let survivors = Hierarchy.surviving_levels h ~scope in
  addf buf "Surviving levels: %s.\n\n"
    (String.concat ", "
       (List.map
          (fun j -> Printf.sprintf "%d (%s)" j (level_name design j))
          survivors))

let candidates_section buf design scenario (dl : Data_loss.t) =
  let h = design.Design.hierarchy in
  let age = scenario.Scenario.target_age in
  addf buf "Recovery target: now - %s.\n" (Duration.to_string age);
  List.iter
    (fun (j, loss) ->
      let range =
        match Hierarchy.guaranteed_range h j with
        | Some r ->
          Printf.sprintf "guarantees RPs aged %s to %s"
            (Duration.to_string (Age_range.newest_age r))
            (Duration.to_string (Age_range.oldest_age r))
        | None -> "guarantees no rollback range (retention too shallow)"
      in
      let verdict =
        match loss with
        | Data_loss.Updates d ->
          Printf.sprintf "would lose %s of updates" (Duration.to_string d)
        | Data_loss.Entire_object -> "cannot serve this target"
      in
      addf buf "  level %d (%s): %s; %s.\n" j (level_name design j) range
        verdict)
    dl.Data_loss.candidates;
  (match (dl.Data_loss.source_level, dl.Data_loss.loss) with
  | Some 0, _ | None, Data_loss.Updates _ ->
    add buf "The primary copy is intact: no recovery is needed.\n"
  | Some j, Data_loss.Updates d ->
    addf buf
      "=> level %d (%s) has the closest retrieval point: worst-case loss %s.\n"
      j (level_name design j) (Duration.to_string d)
  | Some _, Data_loss.Entire_object | None, Data_loss.Entire_object ->
    add buf
      "=> no surviving level retains a usable retrieval point: the object \
       is lost.\n");
  add buf "\n"

let recovery_section buf design (t : Recovery_time.timeline) =
  addf buf "Recovery: restore %s from level %d (%s).\n"
    (Size.to_string t.Recovery_time.recovery_size)
    t.Recovery_time.source_level
    (level_name design t.Recovery_time.source_level);
  List.iter
    (fun (hop : Recovery_time.hop) ->
      let from_dev =
        (Hierarchy.level design.Design.hierarchy hop.Recovery_time.from_level)
          .Hierarchy.device.Device.name
      and to_dev =
        (Hierarchy.level design.Design.hierarchy hop.Recovery_time.to_level)
          .Hierarchy.device.Device.name
      in
      addf buf "  %s -> %s:" from_dev to_dev;
      if not (Duration.is_zero hop.Recovery_time.transit) then
        addf buf " media in transit %s;"
          (Duration.to_string hop.Recovery_time.transit);
      if not (Duration.is_zero hop.Recovery_time.par_fix) then
        addf buf " provisioning the receiver takes %s (in parallel);"
          (Duration.to_string hop.Recovery_time.par_fix);
      if not (Duration.is_zero hop.Recovery_time.ser_fix) then
        addf buf " media load/seek %s;"
          (Duration.to_string hop.Recovery_time.ser_fix);
      (match hop.Recovery_time.transfer_rate with
      | Some rate ->
        addf buf " transfer %s at %s;"
          (Duration.to_string hop.Recovery_time.transfer)
          (Rate.to_string rate)
      | None -> ());
      addf buf " ready %s after the failure.\n"
        (Duration.to_string hop.Recovery_time.ready_at);
      (* Name what actually bound the hop: provisioning only when the hop
         finished exactly when provisioning did (it runs in parallel with
         everything else). *)
      let provisioning_bound =
        (* Relative tolerance: day-scale recoveries have float ulps larger
           than any fixed absolute epsilon, which would misattribute the
           bottleneck. *)
        let a = Duration.to_seconds hop.Recovery_time.ready_at
        and b = Duration.to_seconds hop.Recovery_time.par_fix in
        Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max a b)
      in
      let dominant =
        if provisioning_bound then
          ("receiver provisioning", hop.Recovery_time.par_fix)
        else
          List.fold_left
            (fun (bn, bv) (n, v) -> if Duration.compare v bv > 0 then (n, v) else (bn, bv))
            ("", Duration.zero)
            [
              ("media transit", hop.Recovery_time.transit);
              ("data transfer", hop.Recovery_time.transfer);
              ("media load", hop.Recovery_time.ser_fix);
            ]
      in
      if Duration.compare (snd dominant) Duration.zero > 0 then
        addf buf "    bottleneck: %s.\n" (fst dominant))
    t.Recovery_time.hops;
  addf buf "Total recovery time: %s.\n\n"
    (Duration.to_string t.Recovery_time.total)

let cost_section buf design (dl : Data_loss.t) recovery_time =
  let business = design.Design.business in
  let penalties =
    Cost.penalties business ~recovery_time ~loss:dl.Data_loss.loss
  in
  addf buf
    "Penalties: %s outage + %s recent-data-loss = %s; annual outlays %s.\n"
    (Money.to_string penalties.Cost.outage)
    (Money.to_string penalties.Cost.loss)
    (Money.to_string penalties.Cost.total)
    (Money.to_string (Cost.outlays design).Cost.total)

let narrative design scenario =
  let buf = Buffer.create 1024 in
  addf buf "=== %s under %s ===\n\n" design.Design.name
    (Location.scope_name scenario.Scenario.scope);
  survivors_section buf design scenario;
  let dl = Data_loss.compute design scenario in
  candidates_section buf design scenario dl;
  let recovery_time =
    match dl.Data_loss.source_level with
    | Some level when level > 0 -> (
      match Recovery_time.compute design scenario ~source_level:level with
      | Ok t ->
        recovery_section buf design t;
        t.Recovery_time.total
      | Error e ->
        addf buf "Recovery impossible: %s.\n\n" e;
        Duration.zero)
    | _ -> Duration.zero
  in
  cost_section buf design dl recovery_time;
  Buffer.contents buf
