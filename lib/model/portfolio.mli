open Storage_units
open Storage_device

(** Multi-object storage systems: several protected workloads sharing
    hardware.

    The paper models a single data object and notes that the extension to
    multiple objects tracks each object's demands on shared devices
    (§3.1.1). A portfolio does exactly that: member designs keep their own
    workloads, hierarchies and business requirements, but devices are
    shared by name, so every member's utilization, overcommit validation
    and recovery bandwidth reflect the combined load, and shared fixed
    costs are paid once. *)

type t

val make : Design.t list -> (t, string) result
(** Builds a portfolio. Errors when the list is empty, when two members
    share a design name, or when two members refer to devices with the
    same name but different configurations (shared hardware must be the
    same hardware). Each member is rebuilt with the other members' demands
    as background load. *)

val make_exn : Design.t list -> t
val members : t -> Design.t list
(** The member designs, background-loaded; evaluating one of these with
    {!Evaluate.run} accounts for its neighbours' traffic. *)

val member : t -> string -> Design.t option

val devices : t -> Device.t list
(** All distinct devices across members. *)

val utilization : t -> (Device.t * Device.utilization) list
(** Combined utilization per device under every member's demands. *)

val overcommitted : t -> (Device.t * Device.utilization) list
(** The devices whose combined load exceeds capacity or bandwidth — the
    consolidation check that per-design validation cannot see. *)

val outlays : t -> (string * Money.t) list * Money.t
(** Annualized outlays per member and the portfolio total. Device fixed
    costs (and the matching spare premiums) are charged only to the first
    member hosted on each device; later tenants pay incremental capacity
    and bandwidth only. *)

val evaluate :
  ?engine:Storage_engine.t -> t -> Scenario.t ->
  (string * Evaluate.report) list
(** Evaluates every member under the scenario. Each member's recovery
    competes with the others' normal-mode traffic (via the background
    demands), which is the conservative reading of a shared-infrastructure
    disaster. Results are in member order whatever the engine's [jobs].

    The [?engine] supplies parallelism, the shared evaluation cache
    ({!Eval_cache.of_engine}) and the lint policy. Without an engine the
    evaluation is serial, uncached, lint on — byte-identical to the
    default engine's results.

    When the engine's lint policy is on (the default), members that fail
    {!Design.validate} (typically overcommitted by the combined
    background load) are skipped instead of evaluated into a report full
    of validation errors; each skip increments the shared [lint.pruned]
    {!Storage_obs} counter. Such members still show up in
    {!overcommitted}, which is the right place to diagnose a
    consolidation that does not fit. Pass an engine created with
    [~lint:false] to get a (failed) report for every member. *)

val pp : t Fmt.t
