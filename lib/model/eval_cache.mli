(** Memoized evaluation, keyed by canonical (design, scenario) fingerprints.

    {!Evaluate.run} is a pure function, and the outer exploration loops —
    design-space search, sensitivity sweeps, iterative what-if sessions
    (§4.2), portfolio evaluation — routinely revisit identical (design,
    scenario) pairs. A cache evaluates each pair once and shares the
    report, across calls and across the domains of a
    {!Storage_parallel.Pool} (the underlying {!Storage_parallel.Memo} is
    thread-safe).

    Keys are {!Design.fingerprint} + {!Scenario.fingerprint}: purely
    structural, so it never matters how or where a design was built. A
    cached report is the very value a fresh evaluation would produce —
    callers cannot observe the cache except as saved time. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] bounds the cache with FIFO eviction (see
    {!Storage_parallel.Memo.create}); the default is unbounded. *)

val of_engine : Storage_engine.t -> t
(** The engine's evaluation cache: created on first use (honouring the
    engine's {!Storage_engine.cache_bound} policy) and stored in an
    engine slot, so every loop run on the same engine shares one cache.
    This is how [?engine] entry points resolve their cache — the engine
    itself has no compile-time knowledge of this module. *)

val attach : Storage_engine.t -> t -> unit
(** Makes [t] the engine's cache — e.g. a pre-warmed cache from an
    earlier session, or one with a custom [max_entries] bound. *)

val key : Design.t -> Scenario.t -> string
(** The cache key: both fingerprints, joined. *)

val run : t -> Design.t -> Scenario.t -> Evaluate.report
(** Memoized {!Evaluate.run}. *)

val run_all : t -> Design.t -> Scenario.t list -> Evaluate.report list
(** Memoized {!Evaluate.run_all}. *)

val length : t -> int
(** Distinct (design, scenario) pairs evaluated so far. *)

val hits : t -> int
val misses : t -> int

val evicted : t -> int
(** Reports evicted by the [max_entries] bound; [0] when unbounded. *)

val clear : t -> unit
