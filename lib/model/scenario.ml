open Storage_units
open Storage_device

type t = {
  scope : Location.scope;
  target_age : Duration.t;
  object_size : Size.t option;
}

let make ~scope ?(target_age = Duration.zero) ?object_size () =
  (match object_size with
  | Some _ when not (Location.corrupts_object scope) ->
    invalid_arg
      "Scenario.make: object_size only applies to scopes that corrupt the \
       data object"
  | Some _ | None -> ());
  { scope; target_age; object_size }

let now scope = make ~scope ()

(* Structural hash mirroring [Design.fingerprint]: a scenario is a handful
   of leaves, so the walk costs a few dozen nanoseconds per cache lookup
   and needs no memo. *)
let rec hash_scope h (s : Location.scope) =
  let module H = Struct_hash in
  match s with
  | Location.Data_object -> H.int h 0
  | Location.Device n -> H.string (H.int h 1) n
  | Location.Building n -> H.string (H.int h 2) n
  | Location.Site n -> H.string (H.int h 3) n
  | Location.Region n -> H.string (H.int h 4) n
  | Location.Multiple ss -> H.list hash_scope (H.int h 5) ss

let fingerprint t =
  let module H = Struct_hash in
  let h = hash_scope H.init t.scope in
  let h = H.float h (Duration.to_seconds t.target_age) in
  let h =
    H.option (fun h s -> H.float h (Size.to_bytes s)) h t.object_size
  in
  H.to_hex h

let pp ppf t =
  Fmt.pf ppf "%a, target now - %a%a" Location.pp_scope t.scope Duration.pp
    t.target_age
    (Fmt.option (fun ppf s -> Fmt.pf ppf " (object %a)" Size.pp s))
    t.object_size
