open Storage_units
open Storage_device

type event = {
  scope : Location.scope;
  at : Duration.t;
  target_age : Duration.t;
  object_size : Size.t option;
}

type t = {
  scope : Location.scope;
  target_age : Duration.t;
  object_size : Size.t option;
  events : event list;
}

let check_object_size ~who scope = function
  | Some _ when not (Location.corrupts_object scope) ->
    invalid_arg
      (who
     ^ ": object_size only applies to scopes that corrupt the data object")
  | Some _ | None -> ()

let event ~scope ?(at = Duration.zero) ?(target_age = Duration.zero)
    ?object_size () =
  check_object_size ~who:"Scenario.event" scope object_size;
  if Duration.compare at Duration.zero < 0 then
    invalid_arg "Scenario.event: negative event time";
  { scope; at; target_age; object_size }

(* The analytic projection of an event set: the scope that destroys
   everything any event destroys (so [Location.destroys] and
   [Hierarchy.surviving_levels] see the conjunction of the failures), the
   oldest restoration target, and the largest corrupted object. For a
   singleton this is the event itself, which is what keeps every
   single-failure consumer byte-identical. *)
let project : event list -> _ = function
  | [] -> invalid_arg "Scenario.of_events: no events"
  | [ e ] -> (e.scope, e.target_age, e.object_size)
  | events ->
    let scope =
      match
        List.sort_uniq compare
          (List.map (fun (e : event) -> e.scope) events)
      with
      | [ s ] -> s
      | ss -> Location.Multiple ss
    in
    let target_age =
      List.fold_left
        (fun acc (e : event) -> Duration.max acc e.target_age)
        Duration.zero events
    in
    let object_size =
      List.fold_left
        (fun acc (e : event) ->
          match (acc, e.object_size) with
          | None, s | s, None -> s
          | Some a, Some b -> Some (Size.max a b))
        None events
    in
    (scope, target_age, object_size)

let of_events events =
  let events =
    List.stable_sort (fun a b -> Duration.compare a.at b.at) events
  in
  let scope, target_age, object_size = project events in
  { scope; target_age; object_size; events }

let events t = t.events

let make ~scope ?(target_age = Duration.zero) ?object_size () =
  check_object_size ~who:"Scenario.make" scope object_size;
  {
    scope;
    target_age;
    object_size;
    events = [ { scope; at = Duration.zero; target_age; object_size } ];
  }

let now scope = make ~scope ()

let is_single t =
  match t.events with
  | [ e ] -> Duration.is_zero e.at
  | _ -> false

let combine a b = of_events (a.events @ b.events)

let delay d t =
  if Duration.compare d Duration.zero < 0 then
    invalid_arg "Scenario.delay: negative delay";
  of_events
    (List.map (fun e -> { e with at = Duration.add e.at d }) t.events)

(* Structural hash mirroring [Design.fingerprint]: a scenario is a handful
   of leaves, so the walk costs a few dozen nanoseconds per cache lookup
   and needs no memo. *)
let rec hash_scope h (s : Location.scope) =
  let module H = Struct_hash in
  match s with
  | Location.Data_object -> H.int h 0
  | Location.Device n -> H.string (H.int h 1) n
  | Location.Building n -> H.string (H.int h 2) n
  | Location.Site n -> H.string (H.int h 3) n
  | Location.Region n -> H.string (H.int h 4) n
  | Location.Multiple ss -> H.list hash_scope (H.int h 5) ss

(* Cache-key stability contract: a single-event scenario (every scenario
   that existed before the event-set representation) hashes with exactly
   the walk the old representation used, so warm Eval_cache / serve
   shards keyed before the change stay valid. Multi-event scenarios get a
   domain-separating tag (6 — one past the last scope tag) so no event
   set can collide with a single-failure digest. *)
let fingerprint t =
  let module H = Struct_hash in
  let hash_tail h (e : event) =
    let h = H.float h (Duration.to_seconds e.target_age) in
    H.option (fun h s -> H.float h (Size.to_bytes s)) h e.object_size
  in
  match t.events with
  | [ e ] when Duration.is_zero e.at ->
    H.to_hex (hash_tail (hash_scope H.init e.scope) e)
  | events ->
    let hash_event h (e : event) =
      let h = hash_scope h e.scope in
      let h = H.float h (Duration.to_seconds e.at) in
      hash_tail h e
    in
    H.to_hex (H.list hash_event (H.int H.init 6) events)

let pp_event ppf (e : event) =
  Fmt.pf ppf "%a at +%a, target now - %a%a" Location.pp_scope e.scope
    Duration.pp e.at Duration.pp e.target_age
    (Fmt.option (fun ppf s -> Fmt.pf ppf " (object %a)" Size.pp s))
    e.object_size

let pp ppf t =
  match t.events with
  | [ e ] when Duration.is_zero e.at ->
    Fmt.pf ppf "%a, target now - %a%a" Location.pp_scope t.scope Duration.pp
      t.target_age
      (Fmt.option (fun ppf s -> Fmt.pf ppf " (object %a)" Size.pp s))
      t.object_size
  | events ->
    Fmt.pf ppf "@[<v>%d failure events:@,%a@]" (List.length events)
      (Fmt.list ~sep:Fmt.cut pp_event)
      events
