open Storage_units
open Storage_device

type t = {
  scope : Location.scope;
  target_age : Duration.t;
  object_size : Size.t option;
}

let make ~scope ?(target_age = Duration.zero) ?object_size () =
  (match object_size with
  | Some _ when not (Location.corrupts_object scope) ->
    invalid_arg
      "Scenario.make: object_size only applies to scopes that corrupt the \
       data object"
  | Some _ | None -> ());
  { scope; target_age; object_size }

let now scope = make ~scope ()

let fingerprint t =
  Digest.to_hex (Digest.string (Marshal.to_string t [ Marshal.No_sharing ]))

let pp ppf t =
  Fmt.pf ppf "%a, target now - %a%a" Location.pp_scope t.scope Duration.pp
    t.target_age
    (Fmt.option (fun ppf s -> Fmt.pf ppf " (object %a)" Size.pp s))
    t.object_size
