open Storage_units

(** Frequency-weighted risk assessment.

    The paper deliberately evaluates a single imposed failure scenario
    (§3.1.3), deferring failure frequencies to its automated-design future
    work. This module provides that extension: given each scenario's
    annual frequency, it converts per-incident penalties into an expected
    annual penalty, which composes with the annualized outlays into an
    expected total cost of ownership. *)

type weighted = {
  scenario : Scenario.t;
  frequency_per_year : float;
      (** expected occurrences per year; may be far below 1 for site
          disasters *)
}

type exposure = {
  weighted : weighted;
  report : Evaluate.report;
  per_incident_penalty : Money.t;
  expected_annual_penalty : Money.t;
}

type t = {
  design_name : string;
  exposures : exposure list;
  annual_outlays : Money.t;
  expected_annual_penalty : Money.t;  (** sum over scenarios *)
  expected_annual_cost : Money.t;  (** outlays + expected penalties *)
}

val assess : Design.t -> weighted list -> t
(** Raises [Invalid_argument] on an empty list or a negative frequency. *)

val compare_designs : Design.t list -> weighted list -> (Design.t * t) list
(** Assesses every design against the same weighted scenarios, sorted by
    expected annual cost (cheapest first). *)

(** Monte-Carlo cost distribution over an operating horizon.

    Expectations hide tail risk: a once-a-century disaster with a $72M
    penalty contributes only $0.7M/yr in expectation but dominates the
    years it strikes. Sampling Poisson incident counts per scenario gives
    the full cost distribution a planner can set reserves against. *)
type distribution = {
  horizon_years : float;
  samples : int;
  mean : Money.t;  (** total cost over the horizon (outlays + penalties) *)
  stddev : float;
      (** spread of the sampled horizon costs, in US dollars (not a
          {!Money.t}: it is a dispersion, not an amount of money one
          pays). Computed with the unbiased sample estimator
          (denominator [samples - 1]); [0.] when [samples = 1]. *)
  p50 : Money.t;
  p95 : Money.t;
  p99 : Money.t;
  max : Money.t;
}

val monte_carlo :
  ?engine:Storage_engine.t ->
  ?seed:int64 ->
  ?samples:int ->
  Design.t ->
  weighted list ->
  horizon_years:float ->
  distribution
(** [monte_carlo design weighted ~horizon_years] draws incident counts
    [Poisson(frequency x horizon)] per scenario (default 10,000 samples,
    deterministic seed) and accumulates per-incident penalties plus the
    horizon's outlays.

    Counts are sampled exactly (Knuth's multiplicative method) for
    [lambda < 30] and by a clamped normal approximation
    [max 0 (round (lambda + sqrt lambda * z))] above, so arbitrarily
    large [frequency x horizon] products stay finite and O(1) — the
    multiplicative method's acceptance threshold underflows near
    [lambda ~ 745].

    The [?engine] supplies the domains and, when [?seed] is not given,
    the seed ({!Storage_engine.seed}; its default is this function's
    historical default, so engine-less and default-engine runs agree bit
    for bit). Each sample draws from its own generator seeded off the
    master seed, so for a fixed seed the distribution is bit-identical
    for every [jobs] value; more jobs only spread the sampling across
    domains. Raises [Invalid_argument] on an empty scenario list,
    non-positive horizon or samples, or negative frequencies. *)

val pp : t Fmt.t
val pp_distribution : distribution Fmt.t
