open Storage_units

(** Top-level evaluation: design + scenario -> all four output metrics.

    Composes the utilization, data-loss, recovery-time and cost sub-models
    into the paper's overall framework (§3.3). *)

type report = {
  design_name : string;
  scenario : Scenario.t;
  utilization : Utilization.report;
  data_loss : Data_loss.t;
  recovery : Recovery_time.timeline option;
      (** [None] when no recovery is needed (primary intact) or none is
          possible (total loss) *)
  recovery_time : Duration.t;
      (** zero when no recovery is needed; for a total loss this is zero
          and the loss penalty carries the damage *)
  outlays : Cost.outlays;
  penalties : Cost.penalties;
  total_cost : Money.t;  (** outlays + penalties *)
  meets_rto : bool option;  (** [None] when no RTO is specified *)
  meets_rpo : bool option;
  errors : string list;
      (** design-validation failures and unrecoverable-path errors; an
          empty list means the report is trustworthy *)
}

val run : Design.t -> Scenario.t -> report

val run_all : Design.t -> Scenario.t list -> report list
(** Convenience: evaluate the same design under several scenarios (the
    case-study tables evaluate object / array / site in one sweep). The
    scenario-independent stages are computed once and shared. *)

type prepared
(** The scenario-independent half of an evaluation: validation, normal-mode
    utilization and outlays, which depend only on the design. *)

val prepare : Design.t -> prepared
val run_prepared : prepared -> Scenario.t -> report
(** [run_prepared (prepare d) sc] is {!run}[ d sc]; preparing once and
    running many scenarios skips the recomputation {!run} would do. *)

val pp : report Fmt.t
val pp_summary : report Fmt.t
(** One-line summary: scenario, RT, DL, penalties, total. *)
