open Storage_units

type report = {
  design_name : string;
  scenario : Scenario.t;
  utilization : Utilization.report;
  data_loss : Data_loss.t;
  recovery : Recovery_time.timeline option;
  recovery_time : Duration.t;
  outlays : Cost.outlays;
  penalties : Cost.penalties;
  total_cost : Money.t;
  meets_rto : bool option;
  meets_rpo : bool option;
  errors : string list;
}

(* Stage timers: where a report's wall-clock goes, per metric of the
   paper's framework (utilization, recent data loss, recovery time, cost).
   All no-ops until the observability layer is enabled. *)
let t_run = Storage_obs.Timer.make "evaluate.run"
let t_utilization = Storage_obs.Timer.make "evaluate.stage.utilization"
let t_data_loss = Storage_obs.Timer.make "evaluate.stage.data_loss"
let t_recovery = Storage_obs.Timer.make "evaluate.stage.recovery_time"
let t_cost = Storage_obs.Timer.make "evaluate.stage.cost"

(* The scenario-independent stages — validation, normal-mode utilization,
   outlays — are hoisted into [prepare] and computed once per design;
   [run_prepared] then adds the per-scenario stages (data loss, recovery,
   penalties). Evaluating one design under several scenarios (the common
   case: every search sweep runs 2-3 failure scopes) shares the prepared
   half instead of recomputing it per scenario. *)
type prepared = {
  design : Design.t;
  validation_errors : string list;
  utilization : Utilization.report;
  outlays : Cost.outlays;
}

let prepare design =
  let validation_errors =
    match Design.validate design with Ok () -> [] | Error es -> es
  in
  let utilization =
    Storage_obs.Timer.time t_utilization (fun () ->
        Utilization.compute design)
  in
  let outlays =
    Storage_obs.Timer.time t_cost (fun () -> Cost.outlays design)
  in
  { design; validation_errors; utilization; outlays }

let run_prepared p scenario =
  Storage_obs.Timer.time t_run @@ fun () ->
  let design = p.design in
  let validation_errors = p.validation_errors in
  let utilization = p.utilization in
  let data_loss =
    Storage_obs.Timer.time t_data_loss (fun () ->
        Data_loss.compute design scenario)
  in
  let recovery, recovery_errors =
    Storage_obs.Timer.time t_recovery @@ fun () ->
    match data_loss.Data_loss.source_level with
    | None -> (None, [])
    | Some 0 -> (None, [])
    | Some source_level -> (
      match Recovery_time.compute design scenario ~source_level with
      | Ok t -> (Some t, [])
      | Error e -> (None, [ e ]))
  in
  let recovery_time =
    match recovery with
    | Some t -> t.Recovery_time.total
    | None -> Duration.zero
  in
  let business = design.Design.business in
  let outlays = p.outlays in
  let penalties =
    Storage_obs.Timer.time t_cost (fun () ->
        Cost.penalties business ~recovery_time ~loss:data_loss.Data_loss.loss)
  in
  let meets objective value =
    Option.map (fun bound -> Duration.compare value bound <= 0) objective
  in
  let loss_duration =
    match data_loss.Data_loss.loss with
    | Data_loss.Updates d -> Some d
    | Data_loss.Entire_object -> None
  in
  {
    design_name = design.Design.name;
    scenario;
    utilization;
    data_loss;
    recovery;
    recovery_time;
    outlays;
    penalties;
    total_cost = Money.add outlays.Cost.total penalties.Cost.total;
    meets_rto = meets business.Business.recovery_time_objective recovery_time;
    meets_rpo =
      (match loss_duration with
      | Some d -> meets business.Business.recovery_point_objective d
      | None ->
        Option.map (fun _ -> false) business.Business.recovery_point_objective);
    errors = validation_errors @ recovery_errors;
  }

let run design scenario = run_prepared (prepare design) scenario

let run_all design scenarios =
  let p = prepare design in
  List.map (run_prepared p) scenarios

let pp_summary ppf r =
  Fmt.pf ppf "%-24s %-16s RT %-10s DL %-10s pen %-9s total %s" r.design_name
    (Fmt.str "%a" Storage_device.Location.pp_scope r.scenario.Scenario.scope)
    (Duration.to_string r.recovery_time)
    (Fmt.str "%a" Data_loss.pp_loss r.data_loss.Data_loss.loss)
    (Money.to_string r.penalties.Cost.total)
    (Money.to_string r.total_cost)

let pp ppf r =
  Fmt.pf ppf
    "@[<v>=== %s under %a ===@,%a@,%a@,%a@,%a@,%a@,total cost: %a%a@]"
    r.design_name Scenario.pp r.scenario Utilization.pp r.utilization
    Data_loss.pp r.data_loss
    (Fmt.option Recovery_time.pp)
    r.recovery Cost.pp_outlays r.outlays Cost.pp_penalties r.penalties Money.pp
    r.total_cost
    (Fmt.list ~sep:Fmt.nop (fun ppf e -> Fmt.pf ppf "@,ERROR: %s" e))
    r.errors
