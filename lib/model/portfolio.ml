open Storage_units
open Storage_device

type t = { members : Design.t list }

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let union_devices designs =
  let seen = Hashtbl.create 8 in
  List.concat_map Design.devices designs
  |> List.filter (fun (d : Device.t) ->
         if Hashtbl.mem seen d.Device.name then false
         else begin
           Hashtbl.add seen d.Device.name ();
           true
         end)

let make designs =
  match designs with
  | [] -> Error "portfolio must have at least one member"
  | _ ->
    let names = List.map (fun d -> d.Design.name) designs in
    if List.length names <> List.length (List.sort_uniq String.compare names)
    then Error "portfolio members must have distinct names"
    else begin
      (* Devices shared by name must be the very same configuration. *)
      let by_name = Hashtbl.create 8 in
      let conflict =
        List.concat_map Design.devices designs
        |> List.find_opt (fun (d : Device.t) ->
               match Hashtbl.find_opt by_name d.Device.name with
               | None ->
                 Hashtbl.add by_name d.Device.name d;
                 false
               | Some existing -> existing <> d)
      in
      match conflict with
      | Some d ->
        Error
          (Printf.sprintf
             "device %s has conflicting configurations across members"
             d.Device.name)
      | None ->
        let loaded =
          List.map
            (fun (self : Design.t) ->
              let background =
                union_devices designs
                |> List.filter_map (fun dev ->
                       let extra =
                         List.concat_map
                           (fun (other : Design.t) ->
                             if String.equal other.Design.name self.Design.name
                             then []
                             else
                               Design.demands_on other dev
                               |> List.map (fun l ->
                                      {
                                        Demand.technique =
                                          other.Design.name ^ ": "
                                          ^ l.Demand.technique;
                                        demand = l.Demand.demand;
                                      }))
                           designs
                       in
                       if extra = [] then None
                       else Some (dev.Device.name, extra))
              in
              Design.make ~name:self.Design.name ~workload:self.Design.workload
                ~hierarchy:self.Design.hierarchy ~business:self.Design.business
                ~background ())
            designs
        in
        Ok { members = loaded }
    end

let make_exn designs =
  match make designs with Ok t -> t | Error m -> invalid_arg ("Portfolio: " ^ m)

let members t = t.members

let member t name =
  List.find_opt (fun d -> String.equal d.Design.name name) t.members

let devices t = union_devices t.members

let utilization t =
  List.map
    (fun dev ->
      let demands =
        List.concat_map (fun m -> Design.demands_on m dev) t.members
      in
      (dev, Device.utilization dev demands))
    (devices t)

let overcommitted t =
  List.filter (fun (_, u) -> Device.overcommitted u) (utilization t)

let outlays t =
  (* The first member hosted on a device pays its fixed cost (and the
     fixed share of its spare premium); later tenants pay incremental
     capacity and bandwidth only. *)
  let fixed_paid = Hashtbl.create 8 in
  let per_member =
    List.map
      (fun (m : Design.t) ->
        let o = Cost.outlays m in
        let kept =
          List.filter
            (fun (item : Cost.item) ->
              let fixed_of_device =
                List.find_opt
                  (fun (d : Device.t) ->
                    starts_with ~prefix:(d.Device.name ^ " fixed")
                      item.Cost.component)
                  (Design.devices m)
              in
              match fixed_of_device with
              | None -> true
              | Some d ->
                if Hashtbl.mem fixed_paid d.Device.name then false
                else true)
            o.Cost.items
        in
        List.iter
          (fun (d : Device.t) -> Hashtbl.replace fixed_paid d.Device.name ())
          (Design.devices m);
        ( m.Design.name,
          Money.sum (List.map (fun (i : Cost.item) -> i.Cost.amount) kept) ))
      t.members
  in
  (per_member, Money.sum (List.map snd per_member))

(* Shared by name with [Storage_lint.prune]'s counter: both pre-filters
   report into the one [lint.pruned] metric. *)
let obs_pruned = Storage_obs.Counter.make "lint.pruned"

let lint_members t =
  List.filter
    (fun (m : Design.t) ->
      match Design.validate m with
      | Ok () -> true
      | Error _ ->
        Storage_obs.Counter.incr obs_pruned;
        false)
    t.members

let evaluate ?engine t scenario =
  match engine with
  | None ->
    List.map
      (fun (m : Design.t) -> (m.Design.name, Evaluate.run m scenario))
      (lint_members t)
  | Some e ->
    let members =
      if Storage_engine.lint e then lint_members t else t.members
    in
    let cache = Eval_cache.of_engine e in
    Storage_engine.map e
      (fun (m : Design.t) -> (m.Design.name, Eval_cache.run cache m scenario))
      members

let pp ppf t =
  let per_member, total = outlays t in
  Fmt.pf ppf "@[<v>portfolio of %d designs:@,%a@,%a@,total outlays: %a@]"
    (List.length t.members)
    (Fmt.list ~sep:Fmt.cut (fun ppf (dev, u) ->
         Fmt.pf ppf "  %-14s %a" dev.Device.name Device.pp_utilization u))
    (utilization t)
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, m) ->
         Fmt.pf ppf "  %-24s %a" name Money.pp m))
    per_member Money.pp total
