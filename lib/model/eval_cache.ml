open Storage_parallel

type t = Evaluate.report Memo.t

let create ?max_entries () = Memo.create ?max_entries ~size:256 ()

let key design scenario =
  Design.fingerprint design ^ ":" ^ Scenario.fingerprint scenario

(* One cache slot per engine, minted once at module init: [of_engine]
   inverts the layering (the engine sits below the model yet owns the
   model's cache) via the engine's typed-slot store. *)
let engine_key : t Storage_engine.key = Storage_engine.new_key ()

let of_engine e =
  Storage_engine.slot e engine_key ~default:(fun () ->
      create ?max_entries:(Storage_engine.cache_bound e) ())

let attach e t = Storage_engine.set_slot e engine_key t

let run t design scenario =
  Memo.find_or_add t (key design scenario) (fun () ->
      Evaluate.run design scenario)

let run_all t design scenarios =
  (* Share the scenario-independent stages across this design's misses;
     when every scenario hits, nothing is prepared at all. *)
  let prep = lazy (Evaluate.prepare design) in
  List.map
    (fun scenario ->
      Memo.find_or_add t (key design scenario) (fun () ->
          Evaluate.run_prepared (Lazy.force prep) scenario))
    scenarios

let length t = Memo.length t
let hits t = Memo.hits t
let misses t = Memo.misses t
let evicted t = Memo.evicted t
let clear t = Memo.clear t
