open Storage_parallel

type t = Evaluate.report Memo.t

let create ?max_entries () = Memo.create ?max_entries ~size:256 ()

let key design scenario =
  Design.fingerprint design ^ ":" ^ Scenario.fingerprint scenario

let run t design scenario =
  Memo.find_or_add t (key design scenario) (fun () ->
      Evaluate.run design scenario)

let run_all t design scenarios = List.map (run t design) scenarios

let length t = Memo.length t
let hits t = Memo.hits t
let misses t = Memo.misses t
let evicted t = Memo.evicted t
let clear t = Memo.clear t
