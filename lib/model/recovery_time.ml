open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy

type hop = {
  from_level : int;
  to_level : int;
  transit : Duration.t;
  par_fix : Duration.t;
  ser_fix : Duration.t;
  transfer : Duration.t;
  transfer_rate : Rate.t option;
  ready_at : Duration.t;
}

type timeline = {
  source_level : int;
  recovery_size : Size.t;
  hops : hop list;
  total : Duration.t;
}

(* The recovery path from [source] to the primary, skipping intermediate
   levels colocated with the primary array (they would only add latency). *)
let path hierarchy ~source =
  let rec intermediates i acc =
    if i <= 0 then acc
    else begin
      let l = Hierarchy.level hierarchy i in
      let acc =
        if Technique.colocated_with_primary l.Hierarchy.technique then acc
        else i :: acc
      in
      intermediates (i - 1) acc
    end
  in
  (source :: List.rev (intermediates (source - 1) [])) @ [ 0 ]
  |> List.sort_uniq (fun a b -> compare b a)

let recovery_path hierarchy ~source = path hierarchy ~source

let destroyed scope (d : Device.t) =
  Location.destroys scope ~device_name:d.Device.name d.Device.location

let provisioning scope (d : Device.t) =
  if destroyed scope d then begin
    match Spare.provisioning_time (Device.spare_for d ~scope) with
    | Some p -> Ok p
    | None ->
      Error
        (Printf.sprintf "device %s destroyed and has no applicable spare"
           d.Device.name)
  end
  else Ok Duration.zero

let compute design scenario ~source_level =
  let h = design.Design.hierarchy in
  let n = Hierarchy.length h in
  if source_level <= 0 || source_level >= n then
    invalid_arg "Recovery_time.compute: source level out of range";
  let scope = scenario.Scenario.scope in
  let source = Hierarchy.level h source_level in
  let recovery_size =
    match scenario.Scenario.object_size with
    | Some s -> s
    | None ->
      Demands.recovery_size ~workload:design.Design.workload
        source.Hierarchy.technique
  in
  let levels = path h ~source:source_level in
  let rec hops rt acc = function
    | a :: (b :: _ as rest) -> (
      let la = Hierarchy.level h a and lb = Hierarchy.level h b in
      let link = la.Hierarchy.link in
      let transit =
        match link with
        | Some l -> l.Interconnect.delay
        | None -> Duration.zero
      in
      match provisioning scope lb.Hierarchy.device with
      | Error _ as e -> e
      | Ok par_fix -> (
        let same_device =
          String.equal la.Hierarchy.device.Device.name
            lb.Hierarchy.device.Device.name
        in
        let is_shipment =
          match link with
          | Some { Interconnect.transport = Interconnect.Shipment; _ } -> true
          | Some _ | None -> false
        in
        let transfer_result =
          if is_shipment then Ok (Duration.zero, None)
          else begin
            let avail d =
              (* [Device.available_bandwidth] via the per-design
                 utilization memo. *)
              Rate.sub (Device.max_bandwidth d)
                (Design.device_utilization design d).Device.bandwidth_used
            in
            let src_bw = avail la.Hierarchy.device
            and dst_bw = avail lb.Hierarchy.device in
            let rate =
              if same_device then Rate.scale 0.5 src_bw
              else begin
                let link_bw =
                  match link with
                  | Some l -> Interconnect.bandwidth l
                  | None -> None
                in
                let r = Rate.min src_bw dst_bw in
                match link_bw with Some lb -> Rate.min r lb | None -> r
              end
            in
            if Rate.is_zero rate then
              Error
                (Printf.sprintf
                   "no bandwidth available for transfer from level %d to %d" a
                   b)
            else
              Ok
                ( Rate.time_to_transfer recovery_size rate,
                  Some rate )
          end
        in
        match transfer_result with
        | Error _ as e -> e
        | Ok (transfer, transfer_rate) ->
          (* serFix: tape load / seek at the device the bytes are read
             from; media movement charges it on the subsequent read-out
             hop instead. *)
          let ser_fix =
            if is_shipment then Duration.zero
            else la.Hierarchy.device.Device.access_delay
          in
          (* The receiver's (re)provisioning proceeds in parallel with both
             the media/data movement and the serialized source-side work:
             ready = max(arrival + serFix + serXfer, parFix). The paper's
             printed recursion applies the max before the transfer, but its
             Table 7 mirror rows (site RT = 21.7 h with a 9 h provisioning
             delay and a 20.9 h transfer) are only consistent with the
             parallel form; the two coincide whenever provisioning finishes
             before the data arrives, which covers every other case-study
             cell. *)
          let arrival = Duration.add rt transit in
          let ready_at =
            Duration.max
              (Duration.sum [ arrival; ser_fix; transfer ])
              par_fix
          in
          let hop =
            {
              from_level = a;
              to_level = b;
              transit;
              par_fix;
              ser_fix;
              transfer;
              transfer_rate;
              ready_at;
            }
          in
          hops ready_at (hop :: acc) rest))
    | [ _ ] | [] ->
      Ok
        {
          source_level;
          recovery_size;
          hops = List.rev acc;
          total = rt;
        }
  in
  hops Duration.zero [] levels

let pp_hop ppf h =
  Fmt.pf ppf
    "level %d -> %d: transit %a, parFix %a, serFix %a, xfer %a%a, ready at %a"
    h.from_level h.to_level Duration.pp h.transit Duration.pp h.par_fix
    Duration.pp h.ser_fix Duration.pp h.transfer
    (Fmt.option (fun ppf r -> Fmt.pf ppf " @@ %a" Rate.pp r))
    h.transfer_rate Duration.pp h.ready_at

let pp ppf t =
  Fmt.pf ppf "@[<v>recover %a from level %d:@,%a@,total: %a@]" Size.pp
    t.recovery_size t.source_level
    (Fmt.list ~sep:Fmt.cut pp_hop)
    t.hops Duration.pp t.total
