open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy

type item = { technique : string; component : string; amount : Money.t }

type outlays = {
  items : item list;
  by_technique : (string * Money.t) list;
  total : Money.t;
}

let device_items design (dev : Device.t) =
  let owner = Design.primary_technique_of_device design dev in
  let shares = Demand.by_technique (Design.demands_on design dev) in
  (* Component names vary only by device, not by technique share. *)
  let name_fixed = dev.Device.name ^ " fixed" in
  let name_capacity = dev.Device.name ^ " capacity" in
  let name_bandwidth = dev.Device.name ^ " bandwidth" in
  let base_items =
    List.concat_map
      (fun (technique, demand) ->
        let tail = [] in
        let bw =
          Cost_model.bandwidth_cost dev.Device.cost (Demand.total_bw demand)
        in
        let tail =
          if Money.is_zero bw then tail
          else { technique; component = name_bandwidth; amount = bw } :: tail
        in
        let cap =
          Cost_model.capacity_cost dev.Device.cost demand.Demand.capacity
        in
        let tail =
          if Money.is_zero cap then tail
          else { technique; component = name_capacity; amount = cap } :: tail
        in
        let fixed = dev.Device.cost.Cost_model.fixed in
        if String.equal technique owner && not (Money.is_zero fixed) then
          { technique; component = name_fixed; amount = fixed } :: tail
        else tail)
      shares
  in
  (* Spares shadow the device: each technique's share is multiplied by the
     spare's cost factor (§3.3.5, "allocated in a similar fashion"). *)
  let spare_items label spare =
    match (spare : Spare.t) with
    | Spare.No_spare -> [] (* every shadowed cost would be zero *)
    | Spare.Dedicated _ | Spare.Shared _ ->
      List.filter_map
        (fun { technique; component; amount } ->
          let cost = Spare.cost spare ~original:amount in
          if Money.is_zero cost then None
          else
            Some
              { technique; component = component ^ " " ^ label; amount = cost })
        base_items
  in
  match
    (spare_items "spare" dev.Device.spare,
     spare_items "remote spare" dev.Device.remote_spare)
  with
  | [], [] -> base_items
  | spares, remote_spares -> base_items @ spares @ remote_spares

let link_items design =
  let seen = ref [] in
  List.filter_map
    (fun (l : Hierarchy.level) ->
      match l.Hierarchy.link with
      | None -> None
      | Some link ->
        if List.mem link.Interconnect.name !seen then None
        else begin
          seen := link.Interconnect.name :: !seen;
          let shipments =
            match (link.Interconnect.transport, Technique.schedule l.technique)
            with
            | Interconnect.Shipment, Some s -> Demands.shipments_per_year s
            | _ -> 0.
          in
          let amount =
            Interconnect.annual_cost link ~shipments_per_year:shipments
          in
          if Money.is_zero amount then None
          else
            Some
              {
                technique = Technique.name l.technique;
                component = "link " ^ link.Interconnect.name;
                amount;
              }
        end)
    (Hierarchy.levels design.Design.hierarchy)

(* Techniques in first-appearance order, amounts summed; like
   [Demand.by_technique], the handful of entries makes an in-order
   association fold the fast path. *)
let group_by_technique items =
  let rec merge acc technique amount =
    match acc with
    | [] -> [ (technique, amount) ]
    | (t, total) :: rest when String.equal t technique ->
      (t, Money.add total amount) :: rest
    | pair :: rest -> pair :: merge rest technique amount
  in
  List.fold_left
    (fun acc { technique; amount; _ } -> merge acc technique amount)
    [] items

let outlays design =
  let items =
    List.concat_map (device_items design) (Design.devices design)
    @ link_items design
  in
  {
    items;
    by_technique = group_by_technique items;
    total = List.fold_left (fun acc i -> Money.add acc i.amount) Money.zero items;
  }

type penalties = { outage : Money.t; loss : Money.t; total : Money.t }

let penalties (business : Business.t) ~recovery_time ~loss =
  let outage =
    Money_rate.charge business.Business.outage_penalty_rate recovery_time
  in
  let loss_duration =
    match (loss : Data_loss.loss) with
    | Data_loss.Updates d -> d
    | Data_loss.Entire_object -> business.Business.total_loss_equivalent
  in
  let loss = Money_rate.charge business.Business.loss_penalty_rate loss_duration in
  { outage; loss; total = Money.add outage loss }

let pp_outlays ppf t =
  let pp_tech ppf (name, amount) = Fmt.pf ppf "  %-20s %a" name Money.pp amount in
  Fmt.pf ppf "@[<v>outlays:@,%a@,  %-20s %a@]"
    (Fmt.list ~sep:Fmt.cut pp_tech)
    t.by_technique "total" Money.pp t.total

let pp_penalties ppf t =
  Fmt.pf ppf "penalties: outage %a + loss %a = %a" Money.pp t.outage Money.pp
    t.loss Money.pp t.total
