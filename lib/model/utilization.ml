open Storage_units
open Storage_device

type technique_share = {
  technique : string;
  demand : Demand.t;
  bandwidth_fraction : float;
  capacity_fraction : float;
}

type device_report = {
  device : Device.t;
  shares : technique_share list;
  total : Device.utilization;
}

type link_report = {
  link : Interconnect.t;
  demand : Rate.t;
  fraction : float option;
}

type report = {
  devices : device_report list;
  links : link_report list;
  system_bandwidth_fraction : float;
  system_capacity_fraction : float;
  overcommitted : bool;
}

let device_report design dev =
  let labeled = Design.loaded_demands_on design dev in
  let dev_bw = Device.max_bandwidth dev and dev_cap = Device.max_capacity dev in
  let shares =
    Demand.by_technique labeled
    |> List.map (fun (technique, demand) ->
           {
             technique;
             demand;
             bandwidth_fraction =
               (let bw = Demand.total_bw demand in
                if Rate.is_zero dev_bw then if Rate.is_zero bw then 0. else infinity
                else Rate.ratio bw dev_bw);
             capacity_fraction = Size.ratio demand.Demand.capacity dev_cap;
           })
  in
  { device = dev; shares; total = Design.device_utilization design dev }

let links design =
  let seen = Hashtbl.create 4 in
  Storage_hierarchy.Hierarchy.levels design.Design.hierarchy
  |> List.filter_map (fun (l : Storage_hierarchy.Hierarchy.level) ->
         match l.link with
         | Some link when not (Hashtbl.mem seen link.Interconnect.name) ->
           Hashtbl.add seen link.Interconnect.name ();
           Some link
         | Some _ | None -> None)

let compute design =
  let device_reports =
    List.map (device_report design) (Design.devices design)
  in
  let link_reports =
    List.map
      (fun link ->
        let demand = Design.link_demand design link in
        let fraction =
          match Interconnect.bandwidth link with
          | None -> None
          | Some bw -> Some (Rate.ratio demand bw)
        in
        { link; demand; fraction })
      (links design)
  in
  let max_over f =
    List.fold_left (fun acc r -> Float.max acc (f r)) 0. device_reports
  in
  let link_max =
    List.fold_left
      (fun acc r -> match r.fraction with Some f -> Float.max acc f | None -> acc)
      0. link_reports
  in
  let bw_frac =
    Float.max link_max (max_over (fun r -> r.total.Device.bandwidth_fraction))
  in
  let cap_frac = max_over (fun r -> r.total.Device.capacity_fraction) in
  {
    devices = device_reports;
    links = link_reports;
    system_bandwidth_fraction = bw_frac;
    system_capacity_fraction = cap_frac;
    overcommitted = bw_frac > 1. || cap_frac > 1.;
  }

let pp ppf report =
  let pp_share ppf s =
    Fmt.pf ppf "  %-16s bw %5.1f%%  cap %5.1f%%" s.technique
      (100. *. s.bandwidth_fraction)
      (100. *. s.capacity_fraction)
  in
  let pp_device ppf d =
    Fmt.pf ppf "@[<v>%s:@,%a@,  %-16s %a@]" d.device.Device.name
      (Fmt.list ~sep:Fmt.cut pp_share)
      d.shares "overall" Device.pp_utilization d.total
  in
  Fmt.pf ppf "@[<v>%a@,system: bw %.1f%%, cap %.1f%%%s@]"
    (Fmt.list ~sep:Fmt.cut pp_device)
    report.devices
    (100. *. report.system_bandwidth_fraction)
    (100. *. report.system_capacity_fraction)
    (if report.overcommitted then "  ** OVERCOMMITTED **" else "")
