open Storage_units
open Storage_device

(** Failure scenarios and recovery goals (§3.1.3).

    A scenario imposes one failure scope and asks for restoration to a target
    point in time, expressed as an age before the failure ("now" is age
    zero; a rollback after a corrupting user error asks for an older
    target). [Data_object] scenarios additionally carry the size of the
    damaged object, which bounds the recovery transfer. *)

type t = private {
  scope : Location.scope;
  target_age : Duration.t;  (** [recTargetTime], as an age before now *)
  object_size : Size.t option;
      (** for [Data_object] scopes: how much data must be restored *)
}

val make :
  scope:Location.scope ->
  ?target_age:Duration.t ->
  ?object_size:Size.t ->
  unit ->
  t
(** [target_age] defaults to zero ("now"). Raises [Invalid_argument] if
    [object_size] is given for a non-[Data_object] scope. *)

val now : Location.scope -> t
(** Restoration to the instant before the failure. *)

val fingerprint : t -> string
(** Canonical hex digest of the scenario's structure; the scenario half of
    the {!Eval_cache} key (see {!Design.fingerprint}). *)

val pp : t Fmt.t
