open Storage_units
open Storage_device

(** Failure scenarios and recovery goals (§3.1.3), generalized to a small
    scenario algebra.

    A scenario is a non-empty {e set of timed failure events}. Each event
    imposes one failure scope at an offset [at] from the scenario origin
    and asks for restoration to a target point in time, expressed as an
    age before the failure ("now" is age zero; a rollback after a
    corrupting user error asks for an older target). [Data_object] events
    additionally carry the size of the damaged object, which bounds the
    recovery transfer.

    The classic single-failure scenario of the paper is the singleton
    event set at offset zero ({!make} / {!now}); every analytic consumer
    ([Evaluate], [Explain], [Lint], caching) behaves byte-identically on
    it. Multi-event sets are projected onto the same record fields
    conservatively — combined scope, oldest target, largest object — so
    the closed-form model prices them as the "all failures at once" worst
    case, while the discrete-event simulator ([Sim.run_events]) and the
    fleet Monte Carlo execute the events at their actual offsets. *)

type event = private {
  scope : Location.scope;
  at : Duration.t;  (** offset of the failure from the scenario origin *)
  target_age : Duration.t;  (** [recTargetTime], as an age before the event *)
  object_size : Size.t option;
      (** for [Data_object] scopes: how much data must be restored *)
}

type t = private {
  scope : Location.scope;
      (** combined scope of all events (the analytic projection) *)
  target_age : Duration.t;  (** oldest target over the events *)
  object_size : Size.t option;  (** largest corrupted object, if any *)
  events : event list;  (** non-empty, sorted by [at] *)
}

val event :
  scope:Location.scope ->
  ?at:Duration.t ->
  ?target_age:Duration.t ->
  ?object_size:Size.t ->
  unit ->
  event
(** [at] and [target_age] default to zero. Raises [Invalid_argument] on a
    negative [at] or if [object_size] is given for a non-corrupting
    scope. *)

val of_events : event list -> t
(** Events sorted by offset. Raises [Invalid_argument] on an empty
    list. *)

val events : t -> event list

val make :
  scope:Location.scope ->
  ?target_age:Duration.t ->
  ?object_size:Size.t ->
  unit ->
  t
(** The single-event special case: one failure at offset zero.
    [target_age] defaults to zero ("now"). Raises [Invalid_argument] if
    [object_size] is given for a non-[Data_object] scope. *)

val now : Location.scope -> t
(** Restoration to the instant before the failure. *)

val is_single : t -> bool
(** True for scenarios expressible in the pre-algebra representation:
    exactly one event, at offset zero. *)

val combine : t -> t -> t
(** The union of the two event sets (both keep their offsets). *)

val delay : Duration.t -> t -> t
(** Shifts every event later by the given (non-negative) duration. *)

val fingerprint : t -> string
(** Canonical hex digest of the scenario's structure; the scenario half of
    the {!Eval_cache} key (see {!Design.fingerprint}). Single-event
    scenarios hash exactly as the pre-algebra representation did, so the
    representation change does not invalidate warm cache shards. *)

val pp : t Fmt.t
