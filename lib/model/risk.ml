open Storage_units

type weighted = { scenario : Scenario.t; frequency_per_year : float }

type exposure = {
  weighted : weighted;
  report : Evaluate.report;
  per_incident_penalty : Money.t;
  expected_annual_penalty : Money.t;
}

type t = {
  design_name : string;
  exposures : exposure list;
  annual_outlays : Money.t;
  expected_annual_penalty : Money.t;
  expected_annual_cost : Money.t;
}

let assess design weighted_list =
  if weighted_list = [] then invalid_arg "Risk.assess: no scenarios";
  List.iter
    (fun w ->
      if w.frequency_per_year < 0. || not (Float.is_finite w.frequency_per_year)
      then invalid_arg "Risk.assess: invalid frequency")
    weighted_list;
  let exposures =
    List.map
      (fun weighted ->
        let report = Evaluate.run design weighted.scenario in
        let per_incident_penalty = report.Evaluate.penalties.Cost.total in
        {
          weighted;
          report;
          per_incident_penalty;
          expected_annual_penalty =
            Money.scale weighted.frequency_per_year per_incident_penalty;
        })
      weighted_list
  in
  let annual_outlays =
    (List.hd exposures).report.Evaluate.outlays.Cost.total
  in
  let expected_annual_penalty =
    Money.sum
      (List.map (fun (e : exposure) -> e.expected_annual_penalty) exposures)
  in
  {
    design_name = design.Design.name;
    exposures;
    annual_outlays;
    expected_annual_penalty;
    expected_annual_cost = Money.add annual_outlays expected_annual_penalty;
  }

let compare_designs designs weighted_list =
  List.map (fun d -> (d, assess d weighted_list)) designs
  |> List.sort (fun (_, a) (_, b) ->
         Money.compare a.expected_annual_cost b.expected_annual_cost)

type distribution = {
  horizon_years : float;
  samples : int;
  mean : Money.t;
  stddev : float;
  p50 : Money.t;
  p95 : Money.t;
  p99 : Money.t;
  max : Money.t;
}

let standard_normal rng =
  (* Box-Muller; [1 -. float] keeps the log argument in (0, 1]. *)
  let u1 = 1. -. Storage_workload.Prng.float rng in
  let u2 = Storage_workload.Prng.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

(* Knuth's multiplicative sampler is exact but O(lambda), and its
   [exp (-. lambda)] acceptance limit underflows to 0 for lambda >~ 745,
   after which the loop only terminates when the running product itself
   underflows — a garbage count. Use it only where it is cheap and exact;
   above that, a clamped normal approximation (error O(1/sqrt lambda)) is
   the standard regime split. *)
let poisson rng ~lambda =
  if lambda <= 0. then 0
  else if lambda < 30. then begin
    let limit = exp (-.lambda) in
    let rec draw k p =
      let p = p *. Storage_workload.Prng.float rng in
      if p > limit then draw (k + 1) p else k
    in
    draw 0 1.
  end
  else begin
    let x =
      Float.round (lambda +. (sqrt lambda *. standard_normal rng))
    in
    if x < 0. then 0 else int_of_float x
  end

(* [map] abstracts over how the samples are spread across domains: the
   engine's pool or plain [List.map]. Every sample seeds its own
   generator, so the distribution is independent of the slicing. *)
let monte_carlo_with ~map ~seed ~samples design weighted_list ~horizon_years =
  if weighted_list = [] then invalid_arg "Risk.monte_carlo: no scenarios";
  if horizon_years <= 0. then invalid_arg "Risk.monte_carlo: non-positive horizon";
  if samples <= 0 then invalid_arg "Risk.monte_carlo: non-positive samples";
  List.iter
    (fun w ->
      if w.frequency_per_year < 0. || not (Float.is_finite w.frequency_per_year)
      then invalid_arg "Risk.monte_carlo: invalid frequency")
    weighted_list;
  (* Per-incident penalties are scenario-determined; evaluate once. *)
  let priced =
    List.map
      (fun w ->
        let report = Evaluate.run design w.scenario in
        (w.frequency_per_year *. horizon_years,
         Money.to_usd report.Evaluate.penalties.Cost.total))
      weighted_list
  in
  let outlays =
    horizon_years *. Money.to_usd (Cost.outlays design).Cost.total
  in
  (* One generator per sample, seeded from a master stream: every sample's
     draws are independent of how the work is sliced, so the distribution
     is identical whatever [jobs] is. *)
  let master = Storage_workload.Prng.create ~seed in
  let sample_seeds =
    List.init samples (fun _ -> Storage_workload.Prng.next_int64 master)
  in
  let draw_sample seed =
    let rng = Storage_workload.Prng.create ~seed in
    List.fold_left
      (fun acc (lambda, penalty) ->
        acc +. (float_of_int (poisson rng ~lambda) *. penalty))
      outlays priced
  in
  let draws = Array.of_list (map draw_sample sample_seeds) in
  Array.sort Float.compare draws;
  let n = float_of_int samples in
  let mean = Array.fold_left ( +. ) 0. draws /. n in
  let variance =
    (* Unbiased sample estimator; a single sample has no spread. *)
    if samples < 2 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. draws
      /. (n -. 1.)
  in
  let percentile p =
    let idx = int_of_float (p *. (n -. 1.)) in
    Money.usd draws.(idx)
  in
  {
    horizon_years;
    samples;
    mean = Money.usd mean;
    stddev = sqrt variance;
    p50 = percentile 0.50;
    p95 = percentile 0.95;
    p99 = percentile 0.99;
    max = Money.usd draws.(samples - 1);
  }

let monte_carlo ?engine ?seed ?(samples = 10_000) design weighted_list
    ~horizon_years =
  let seed =
    match (seed, engine) with
    | Some s, _ -> s
    | None, Some e -> Storage_engine.seed e
    | None, None -> 0xCA5CADEL
  in
  let map f xs =
    match engine with
    | None -> List.map f xs
    | Some e -> Storage_engine.map e f xs
  in
  monte_carlo_with ~map ~seed ~samples design weighted_list ~horizon_years

let pp_distribution ppf d =
  Fmt.pf ppf
    "over %.0f yr (%d samples): mean %a, p50 %a, p95 %a, p99 %a, max %a"
    d.horizon_years d.samples Money.pp d.mean Money.pp d.p50 Money.pp d.p95
    Money.pp d.p99 Money.pp d.max

let pp ppf t =
  let pp_exposure ppf e =
    Fmt.pf ppf "  %-18s %6.3f/yr x %-9s = %s/yr"
      (Fmt.str "%a" Storage_device.Location.pp_scope
         e.weighted.scenario.Scenario.scope)
      e.weighted.frequency_per_year
      (Money.to_string e.per_incident_penalty)
      (Money.to_string e.expected_annual_penalty)
  in
  Fmt.pf ppf
    "@[<v>risk assessment for %s:@,%a@,  outlays %a + expected penalties %a \
     = %a per year@]"
    t.design_name
    (Fmt.list ~sep:Fmt.cut pp_exposure)
    t.exposures Money.pp t.annual_outlays Money.pp t.expected_annual_penalty
    Money.pp t.expected_annual_cost
