open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy

(* Everything the evaluation pipeline derives from a design's structure,
   computed once per design and memoized. Each record field is pure
   marshalable data (no closures, no lazies): designs are routinely
   marshaled by the byte-identity test suites, and the whole record is
   always computed in one shot, so two structurally equal designs that have
   both been touched by any accessor marshal identically. *)
type level_lag = {
  lag_worst : Duration.t;
  lag_range : Age_range.t option;
  lag_rp_min : Duration.t;  (** zero for level 0 (no schedule) *)
}

type derived = {
  d_placements : (int * Hierarchy.level * Demands.placement) list;
  d_devices : Device.t list;
  d_demands : (string * Demand.labeled list) list;
  d_loaded : (string * Demand.labeled list) list;
  d_utilization : (string * Device.utilization) list;
  d_link_demands : (string * Rate.t) list;
  d_validation : (unit, string list) result;
  d_level_lags : level_lag array;
}

type t = {
  name : string;
  workload : Workload.t;
  hierarchy : Hierarchy.t;
  business : Business.t;
  background : (string * Demand.labeled list) list;
  fingerprint_memo : string option Atomic.t;
  derived_memo : derived option Atomic.t;
}

let make ~name ~workload ~hierarchy ~business ?(background = []) () =
  { name; workload; hierarchy; business; background;
    fingerprint_memo = Atomic.make None;
    derived_memo = Atomic.make None }

let strip t =
  { t with
    fingerprint_memo = Atomic.make None;
    derived_memo = Atomic.make None }

let primary_raid t =
  match (Hierarchy.primary t.hierarchy).Hierarchy.technique with
  | Technique.Primary_copy { raid } -> raid
  | _ -> assert false (* enforced by Hierarchy.make *)

let compute_devices t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (l : Hierarchy.level) ->
      let name = l.device.Device.name in
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        Some l.device
      end)
    (Hierarchy.levels t.hierarchy)

(* The RAID capacity factor charged for a level's copies: colocated
   techniques inherit the primary array's organization; everything else is
   charged logical capacity (§3.2.3 charges mirror destinations "the data
   capacity"). *)
let host_raid_for t (l : Hierarchy.level) =
  if Technique.colocated_with_primary l.technique then primary_raid t
  else Raid.Raid0

let compute_placements t =
  let h = t.hierarchy in
  List.mapi
    (fun j (l : Hierarchy.level) ->
      let upstream =
        if j = 0 then None
        else Technique.schedule (Hierarchy.level h (j - 1)).Hierarchy.technique
      in
      let placement =
        Demands.of_technique ~workload:t.workload
          ~host_raid:(host_raid_for t l) ?upstream l.technique
      in
      (j, l, placement))
    (Hierarchy.levels h)

let compute_demands_on t placements name =
  let h = t.hierarchy in
  List.concat_map
    (fun (j, (l : Hierarchy.level), (p : Demands.placement)) ->
      let target =
        if String.equal l.device.Device.name name then
          [ { Demand.technique = Technique.name l.technique;
              demand = p.on_target } ]
        else []
      in
      let source =
        if j > 0 && not (Demand.is_zero p.on_source) then begin
          let src = (Hierarchy.level h (j - 1)).Hierarchy.device in
          if String.equal src.Device.name name then
            [ { Demand.technique = Technique.name l.technique;
                demand = p.on_source } ]
          else []
        end
        else []
      in
      target @ source)
    placements
  |> List.filter (fun l -> not (Demand.is_zero l.Demand.demand))

let background_on t name =
  match List.assoc_opt name t.background with
  | Some demands -> demands
  | None -> []

let compute_link_demand placements (link : Interconnect.t) =
  List.fold_left
    (fun acc (_, (l : Hierarchy.level), (p : Demands.placement)) ->
      match l.Hierarchy.link with
      | Some lk when String.equal lk.Interconnect.name link.Interconnect.name
        ->
        Rate.add acc p.on_link
      | Some _ | None -> acc)
    Rate.zero placements

let distinct_links t =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun (l : Hierarchy.level) ->
      match l.Hierarchy.link with
      | Some link when not (Hashtbl.mem seen link.Interconnect.name) ->
        Hashtbl.add seen link.Interconnect.name ();
        Some link
      | Some _ | None -> None)
    (Hierarchy.levels t.hierarchy)

(* The error conditions here must stay in one-to-one correspondence with
   [Storage_lint]'s design-wide error rules (E010-E013, E018): [validate]
   is the evaluation-time shim (it cannot call the lint library, which
   sits above this one), and the [test_lint] property suite checks that a
   design fails here iff it carries a lint error. *)
let compute_validation t ~utilization ~link_demands =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun (name, (u : Device.utilization)) ->
      if u.Device.capacity_fraction > 1. then
        err "device %s capacity overcommitted: %.1f%%" name
          (100. *. u.Device.capacity_fraction);
      if u.Device.bandwidth_fraction > 1. then
        err "device %s bandwidth overcommitted: %.1f%%" name
          (100. *. u.Device.bandwidth_fraction))
    utilization;
  List.iter
    (fun (l : Hierarchy.level) ->
      let required =
        Demands.required_link_bandwidth ~workload:t.workload l.technique
      in
      if not (Rate.is_zero required) then begin
        match l.link with
        | None ->
          err "%s requires an interconnect" (Technique.name l.technique)
        | Some link -> (
          match Interconnect.bandwidth link with
          | Some bw when Rate.compare bw required < 0 ->
            err "link %s (%s) cannot sustain %s traffic (%s required)"
              link.Interconnect.name (Rate.to_string bw)
              (Technique.name l.technique)
              (Rate.to_string required)
          | Some _ | None -> ())
      end)
    (Hierarchy.levels t.hierarchy);
  (* Aggregate oversubscription: levels sharing an interconnect must fit
     on it together (§3.3.1's global check applied to links). *)
  List.iter
    (fun link ->
      match Interconnect.bandwidth link with
      | Some bw ->
        let demand =
          match List.assoc link.Interconnect.name link_demands with
          | d -> d
          | exception Not_found -> Rate.zero
        in
        if Rate.compare demand bw > 0 then
          err
            "link %s oversubscribed: aggregate propagation demand %s \
             exceeds bandwidth %s"
            link.Interconnect.name (Rate.to_string demand)
            (Rate.to_string bw)
      | None -> ())
    (distinct_links t);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let compute_level_lags t =
  let h = t.hierarchy in
  Array.init (Hierarchy.length h) (fun j ->
      {
        lag_worst = Hierarchy.worst_lag h j;
        lag_range = Hierarchy.guaranteed_range h j;
        lag_rp_min =
          (match
             Technique.schedule (Hierarchy.level h j).Hierarchy.technique
           with
          | Some s -> Schedule.rp_interval_min s
          | None -> Duration.zero);
      })

let compute_derived t =
  let d_placements = compute_placements t in
  let d_devices = compute_devices t in
  let d_demands =
    List.map
      (fun (d : Device.t) ->
        (d.Device.name, compute_demands_on t d_placements d.Device.name))
      d_devices
  in
  let d_loaded =
    List.map
      (fun (name, demands) -> (name, demands @ background_on t name))
      d_demands
  in
  let d_utilization =
    List.map2
      (fun (d : Device.t) (_, loaded) ->
        (d.Device.name, Device.utilization d loaded))
      d_devices d_loaded
  in
  let d_link_demands =
    List.map
      (fun (link : Interconnect.t) ->
        (link.Interconnect.name, compute_link_demand d_placements link))
      (distinct_links t)
  in
  let d_validation =
    compute_validation t ~utilization:d_utilization
      ~link_demands:d_link_demands
  in
  {
    d_placements;
    d_devices;
    d_demands;
    d_loaded;
    d_utilization;
    d_link_demands;
    d_validation;
    d_level_lags = compute_level_lags t;
  }

let derived t =
  match Atomic.get t.derived_memo with
  | Some d -> d
  | None ->
    (* Domains racing here compute structurally equal records; whichever
       store wins is indistinguishable to readers. *)
    let d = compute_derived t in
    Atomic.set t.derived_memo (Some d);
    d

let devices t = (derived t).d_devices

let device t name =
  List.find_opt (fun d -> String.equal d.Device.name name) (devices t)

let placements t = (derived t).d_placements

let demands_on t dev =
  match List.assoc_opt dev.Device.name (derived t).d_demands with
  | Some demands -> demands
  | None -> [] (* not a hierarchy device: it carries none of our demands *)

let loaded_demands_on t dev =
  match List.assoc_opt dev.Device.name (derived t).d_loaded with
  | Some demands -> demands
  | None -> background_on t dev.Device.name

let device_utilization t dev =
  match List.assoc_opt dev.Device.name (derived t).d_utilization with
  | Some u -> u
  | None -> Device.utilization dev (loaded_demands_on t dev)

let link_demand t (link : Interconnect.t) =
  match List.assoc_opt link.Interconnect.name (derived t).d_link_demands with
  | Some d -> d
  | None -> compute_link_demand (placements t) link

let validate t = (derived t).d_validation

let level_lag_exn t j =
  let lags = (derived t).d_level_lags in
  if j < 0 || j >= Array.length lags then
    invalid_arg "Design.level_lag: level out of range";
  lags.(j)

let worst_lag t j = (level_lag_exn t j).lag_worst
let guaranteed_range t j = (level_lag_exn t j).lag_range
let rp_interval_min t j = (level_lag_exn t j).lag_rp_min

let primary_technique_of_device t dev =
  let owner =
    List.find_opt
      (fun (l : Hierarchy.level) ->
        String.equal l.device.Device.name dev.Device.name)
      (Hierarchy.levels t.hierarchy)
  in
  match owner with
  | Some l -> Technique.name l.technique
  | None -> invalid_arg "Design.primary_technique_of_device: unknown device"

(* Structural fingerprint: an explicit walk over every design parameter,
   folded into a {!Storage_units.Struct_hash} accumulator. Compared with
   the Marshal + MD5 digest it replaced this allocates no byte buffer, and
   like it the result depends only on the structure, never on how the
   value was built. Every variant constructor feeds a distinct tag and
   every list is length-prefixed, so distinct structures cannot collide by
   concatenation; the memo fields are excluded. *)
module H = Struct_hash

let hash_duration h d = H.float h (Duration.to_seconds d)
let hash_rate h r = H.float h (Rate.to_bytes_per_sec r)
let hash_size h s = H.float h (Size.to_bytes s)
let hash_money h m = H.float h (Money.to_usd m)
let hash_money_rate h m = H.float h (Money_rate.to_usd_per_sec m)

let hash_raid h = function
  | Raid.Raid0 -> H.int h 0
  | Raid.Raid1 -> H.int h 1
  | Raid.Raid5 { stripe_width } -> H.int (H.int h 2) stripe_width
  | Raid.Raid10 -> H.int h 3

let hash_representation h (r : Schedule.representation) =
  H.int h
    (match r with Full -> 0 | Cumulative -> 1 | Differential -> 2)

let hash_windows h (w : Schedule.windows) =
  hash_duration
    (hash_duration (hash_duration h w.Schedule.accumulation)
       w.Schedule.propagation)
    w.Schedule.hold

let hash_schedule h (s : Schedule.t) =
  let h = hash_windows h s.Schedule.full in
  let h =
    H.option
      (fun h (r, w) -> hash_windows (hash_representation h r) w)
      h s.Schedule.secondary
  in
  let h = H.int h s.Schedule.cycle_count in
  let h = H.int h s.Schedule.retention_count in
  hash_representation h s.Schedule.copy_representation

let hash_mirror_mode h (m : Technique.mirror_mode) =
  H.int h
    (match m with
    | Synchronous -> 0
    | Asynchronous -> 1
    | Asynchronous_batch -> 2)

let hash_technique h (tq : Technique.t) =
  match tq with
  | Technique.Primary_copy { raid } -> hash_raid (H.int h 0) raid
  | Technique.Split_mirror s -> hash_schedule (H.int h 1) s
  | Technique.Virtual_snapshot s -> hash_schedule (H.int h 2) s
  | Technique.Remote_mirror { mode; schedule } ->
    hash_schedule (hash_mirror_mode (H.int h 3) mode) schedule
  | Technique.Backup s -> hash_schedule (H.int h 4) s
  | Technique.Vaulting s -> hash_schedule (H.int h 5) s
  | Technique.Erasure_coded { fragments; required; schedule } ->
    hash_schedule (H.int (H.int (H.int h 6) fragments) required) schedule

let hash_location h (l : Location.t) =
  H.string
    (H.string (H.string h l.Location.building) l.Location.site)
    l.Location.region

let hash_spare h (s : Spare.t) =
  match s with
  | Spare.No_spare -> H.int h 0
  | Spare.Dedicated { provisioning_time } ->
    hash_duration (H.int h 1) provisioning_time
  | Spare.Shared { provisioning_time; discount } ->
    H.float (hash_duration (H.int h 2) provisioning_time) discount

let hash_cost_model h (c : Cost_model.t) =
  H.float
    (H.float
       (H.float (hash_money h c.Cost_model.fixed) c.Cost_model.per_gib)
       c.Cost_model.per_mib_per_sec)
    c.Cost_model.per_shipment

let hash_device h (d : Device.t) =
  let h = H.string h d.Device.name in
  let h = hash_location h d.Device.location in
  let h = H.int h d.Device.max_capacity_slots in
  let h = hash_size h d.Device.slot_capacity in
  let h = H.int h d.Device.max_bandwidth_slots in
  let h = hash_rate h d.Device.slot_bandwidth in
  let h = hash_rate h d.Device.enclosure_bandwidth in
  let h = hash_duration h d.Device.access_delay in
  let h = hash_cost_model h d.Device.cost in
  hash_spare (hash_spare h d.Device.spare) d.Device.remote_spare

let hash_transport h (tr : Interconnect.transport) =
  match tr with
  | Interconnect.Network { link_bandwidth; links } ->
    H.int (hash_rate (H.int h 0) link_bandwidth) links
  | Interconnect.Shipment -> H.int h 1

let hash_interconnect h (i : Interconnect.t) =
  let h = H.string h i.Interconnect.name in
  let h = hash_transport h i.Interconnect.transport in
  let h = hash_duration h i.Interconnect.delay in
  hash_spare (hash_cost_model h i.Interconnect.cost) i.Interconnect.spare

let hash_level h (l : Hierarchy.level) =
  H.option hash_interconnect
    (hash_device (hash_technique h l.Hierarchy.technique) l.Hierarchy.device)
    l.Hierarchy.link

let hash_workload h (w : Workload.t) =
  let h = H.string h w.Workload.name in
  let h = hash_size h w.Workload.data_capacity in
  let h = hash_rate h w.Workload.avg_access_rate in
  let h = hash_rate h w.Workload.avg_update_rate in
  let h = H.float h w.Workload.burst_multiplier in
  H.list
    (fun h (d, r) -> hash_rate (hash_duration h d) r)
    h
    (Batch_curve.samples w.Workload.batch_curve)

let hash_business h (b : Business.t) =
  let h = hash_money_rate h b.Business.outage_penalty_rate in
  let h = hash_money_rate h b.Business.loss_penalty_rate in
  let h = H.option hash_duration h b.Business.recovery_time_objective in
  let h = H.option hash_duration h b.Business.recovery_point_objective in
  hash_duration h b.Business.total_loss_equivalent

let hash_labeled h (l : Demand.labeled) =
  let h = H.string h l.Demand.technique in
  let d = l.Demand.demand in
  hash_size
    (hash_rate (hash_rate h d.Demand.read_bw) d.Demand.write_bw)
    d.Demand.capacity

let fingerprint t =
  match Atomic.get t.fingerprint_memo with
  | Some fp -> fp
  | None ->
    let h = H.string H.init t.name in
    let h = hash_workload h t.workload in
    let h = H.list hash_level h (Hierarchy.levels t.hierarchy) in
    let h = hash_business h t.business in
    let h =
      H.list
        (fun h (name, demands) ->
          H.list hash_labeled (H.string h name) demands)
        h t.background
    in
    let fp = H.to_hex h in
    Atomic.set t.fingerprint_memo (Some fp);
    fp

let pp ppf t =
  Fmt.pf ppf "@[<v>design %s:@,%a@,%a@,business: %a@]" t.name Workload.pp
    t.workload Hierarchy.pp t.hierarchy Business.pp t.business
