open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy

type t = {
  name : string;
  workload : Workload.t;
  hierarchy : Hierarchy.t;
  business : Business.t;
  background : (string * Demand.labeled list) list;
  fingerprint_memo : string option Atomic.t;
}

let make ~name ~workload ~hierarchy ~business ?(background = []) () =
  { name; workload; hierarchy; business; background;
    fingerprint_memo = Atomic.make None }

let primary_raid t =
  match (Hierarchy.primary t.hierarchy).Hierarchy.technique with
  | Technique.Primary_copy { raid } -> raid
  | _ -> assert false (* enforced by Hierarchy.make *)

let devices t =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (l : Hierarchy.level) ->
      let name = l.device.Device.name in
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        Some l.device
      end)
    (Hierarchy.levels t.hierarchy)

let device t name =
  List.find_opt (fun d -> String.equal d.Device.name name) (devices t)

(* The RAID capacity factor charged for a level's copies: colocated
   techniques inherit the primary array's organization; everything else is
   charged logical capacity (§3.2.3 charges mirror destinations "the data
   capacity"). *)
let host_raid_for t (l : Hierarchy.level) =
  if Technique.colocated_with_primary l.technique then primary_raid t
  else Raid.Raid0

let placements t =
  let h = t.hierarchy in
  List.mapi
    (fun j (l : Hierarchy.level) ->
      let upstream =
        if j = 0 then None
        else Technique.schedule (Hierarchy.level h (j - 1)).Hierarchy.technique
      in
      let placement =
        Demands.of_technique ~workload:t.workload
          ~host_raid:(host_raid_for t l) ?upstream l.technique
      in
      (j, l, placement))
    (Hierarchy.levels h)

let demands_on t dev =
  let h = t.hierarchy in
  let name = dev.Device.name in
  List.concat_map
    (fun (j, (l : Hierarchy.level), (p : Demands.placement)) ->
      let target =
        if String.equal l.device.Device.name name then
          [ { Demand.technique = Technique.name l.technique;
              demand = p.on_target } ]
        else []
      in
      let source =
        if j > 0 && not (Demand.is_zero p.on_source) then begin
          let src = (Hierarchy.level h (j - 1)).Hierarchy.device in
          if String.equal src.Device.name name then
            [ { Demand.technique = Technique.name l.technique;
                demand = p.on_source } ]
          else []
        end
        else []
      in
      target @ source)
    (placements t)
  |> List.filter (fun l -> not (Demand.is_zero l.Demand.demand))

let loaded_demands_on t dev =
  let extra =
    match List.assoc_opt dev.Device.name t.background with
    | Some demands -> demands
    | None -> []
  in
  demands_on t dev @ extra

let link_demand t (link : Interconnect.t) =
  List.fold_left
    (fun acc (_, (l : Hierarchy.level), (p : Demands.placement)) ->
      match l.link with
      | Some lk when String.equal lk.Interconnect.name link.Interconnect.name
        ->
        Rate.add acc p.on_link
      | Some _ | None -> acc)
    Rate.zero (placements t)

let primary_technique_of_device t dev =
  let owner =
    List.find_opt
      (fun (l : Hierarchy.level) ->
        String.equal l.device.Device.name dev.Device.name)
      (Hierarchy.levels t.hierarchy)
  in
  match owner with
  | Some l -> Technique.name l.technique
  | None -> invalid_arg "Design.primary_technique_of_device: unknown device"

(* The error conditions here must stay in one-to-one correspondence with
   [Storage_lint]'s design-wide error rules (E010-E013, E018): [validate]
   is the evaluation-time shim (it cannot call the lint library, which
   sits above this one), and the [test_lint] property suite checks that a
   design fails here iff it carries a lint error. *)
let validate t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  List.iter
    (fun dev ->
      let u = Device.utilization dev (loaded_demands_on t dev) in
      if u.Device.capacity_fraction > 1. then
        err "device %s capacity overcommitted: %.1f%%" dev.Device.name
          (100. *. u.Device.capacity_fraction);
      if u.Device.bandwidth_fraction > 1. then
        err "device %s bandwidth overcommitted: %.1f%%" dev.Device.name
          (100. *. u.Device.bandwidth_fraction))
    (devices t);
  List.iter
    (fun (l : Hierarchy.level) ->
      let required =
        Demands.required_link_bandwidth ~workload:t.workload l.technique
      in
      if not (Rate.is_zero required) then begin
        match l.link with
        | None ->
          err "%s requires an interconnect" (Technique.name l.technique)
        | Some link -> (
          match Interconnect.bandwidth link with
          | Some bw when Rate.compare bw required < 0 ->
            err "link %s (%s) cannot sustain %s traffic (%s required)"
              link.Interconnect.name (Rate.to_string bw)
              (Technique.name l.technique)
              (Rate.to_string required)
          | Some _ | None -> ())
      end)
    (Hierarchy.levels t.hierarchy);
  (* Aggregate oversubscription: levels sharing an interconnect must fit
     on it together (§3.3.1's global check applied to links). *)
  let seen_links = ref [] in
  List.iter
    (fun (l : Hierarchy.level) ->
      match l.link with
      | Some link when not (List.mem link.Interconnect.name !seen_links) -> (
        seen_links := link.Interconnect.name :: !seen_links;
        match Interconnect.bandwidth link with
        | Some bw ->
          let demand = link_demand t link in
          if Rate.compare demand bw > 0 then
            err
              "link %s oversubscribed: aggregate propagation demand %s \
               exceeds bandwidth %s"
              link.Interconnect.name (Rate.to_string demand)
              (Rate.to_string bw)
        | None -> ())
      | Some _ | None -> ())
    (Hierarchy.levels t.hierarchy);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let fingerprint t =
  match Atomic.get t.fingerprint_memo with
  | Some fp -> fp
  | None ->
    (* Designs are pure data (no closures, no custom blocks beyond floats),
       so a structural serialization is a canonical key: [No_sharing] makes
       the bytes depend only on the structure, never on how the value was
       built, and structurally distinct designs cannot collide before the
       digest. The memo field is excluded from the digested bytes; domains
       racing here write equal strings, which is harmless. *)
    let fp =
      Digest.to_hex
        (Digest.string
           (Marshal.to_string
              (t.name, t.workload, t.hierarchy, t.business, t.background)
              [ Marshal.No_sharing ]))
    in
    Atomic.set t.fingerprint_memo (Some fp);
    fp

let pp ppf t =
  Fmt.pf ppf "@[<v>design %s:@,%a@,%a@,business: %a@]" t.name Workload.pp
    t.workload Hierarchy.pp t.hierarchy Business.pp t.business
