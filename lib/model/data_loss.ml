open Storage_units
open Storage_hierarchy

type loss = Updates of Duration.t | Entire_object

let compare_loss a b =
  match (a, b) with
  | Updates d1, Updates d2 -> Duration.compare d1 d2
  | Updates _, Entire_object -> -1
  | Entire_object, Updates _ -> 1
  | Entire_object, Entire_object -> 0

type t = {
  source_level : int option;
  loss : loss;
  candidates : (int * loss) list;
}

(* Lag and range lookups go through [Design]'s per-design memo rather than
   recomputing the window sums on every scenario. *)
let level_loss design j ~target_age =
  if j = 0 then
    (* The primary copy holds the current state: only a "now" target. *)
    if Duration.is_zero target_age then Updates Duration.zero
    else Entire_object
  else begin
    let worst = Design.worst_lag design j in
    match Design.guaranteed_range design j with
    | Some range ->
      if Duration.compare target_age (Age_range.newest_age range) < 0 then
        Updates (Duration.sub worst target_age)
      else if Age_range.contains range target_age then
        Updates (Design.rp_interval_min design j)
      else Entire_object
    | None ->
      (* Retention too shallow to guarantee a range (e.g. a mirror with
         retCnt = 1): only targets newer than the worst lag are served. *)
      if Duration.compare target_age worst < 0 then
        Updates (Duration.sub worst target_age)
      else Entire_object
  end

let compute design scenario =
  let h = design.Design.hierarchy in
  let scope = scenario.Scenario.scope and age = scenario.Scenario.target_age in
  let survivors = Hierarchy.surviving_levels h ~scope in
  let primary_intact = List.mem 0 survivors in
  if primary_intact && Duration.is_zero age then
    { source_level = None; loss = Updates Duration.zero; candidates = [] }
  else begin
    let candidates =
      List.filter_map
        (fun j ->
          if j = 0 then None
          else Some (j, level_loss design j ~target_age:age))
        survivors
    in
    match candidates with
    | [] -> { source_level = None; loss = Entire_object; candidates = [] }
    | first :: rest ->
      let best_level, best_loss =
        List.fold_left
          (fun (bj, bl) (j, l) ->
            if compare_loss l bl < 0 then (j, l) else (bj, bl))
          first rest
      in
      (match best_loss with
      | Entire_object ->
        { source_level = None; loss = Entire_object; candidates }
      | Updates _ ->
        { source_level = Some best_level; loss = best_loss; candidates })
  end

let pp_loss ppf = function
  | Updates d -> Duration.pp ppf d
  | Entire_object -> Fmt.string ppf "entire object"

let pp ppf t =
  Fmt.pf ppf "loss %a%a" pp_loss t.loss
    (Fmt.option (fun ppf j -> Fmt.pf ppf " (source: level %d)" j))
    t.source_level
