open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let rec traverse f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = traverse f rest in
    Ok (y :: ys)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let reject_unknown section ~known =
  match Ini.unknown_keys section ~known with
  | [] -> Ok ()
  | ks ->
    err "[%s%s]: unknown key%s %s" section.Ini.kind
      (match section.Ini.arg with Some a -> " " ^ a | None -> "")
      (if List.length ks > 1 then "s" else "")
      (String.concat ", " ks)

(* --- workload --- *)

let parse_batch_curve raw =
  let samples = String.split_on_char ',' raw in
  let* parsed =
    traverse
      (fun sample ->
        match String.index_opt sample ':' with
        | None -> err "batch sample %S must be \"WINDOW: RATE\"" sample
        | Some i ->
          let* win = Values.duration (String.sub sample 0 i) in
          let* rate =
            Values.rate
              (String.sub sample (i + 1) (String.length sample - i - 1))
          in
          Ok (win, rate))
      samples
  in
  match Batch_curve.of_samples parsed with
  | curve -> Ok curve
  | exception Invalid_argument m -> Error m

let parse_workload section =
  let* () =
    reject_unknown section
      ~known:
        [ "name"; "data_capacity"; "avg_access_rate"; "avg_update_rate";
          "burst_multiplier"; "batch" ]
  in
  let name = Option.value ~default:"workload" (Ini.get_opt section "name") in
  let* data_capacity = Ini.get_parsed section "data_capacity" Values.size in
  let* avg_access_rate = Ini.get_parsed section "avg_access_rate" Values.rate in
  let* avg_update_rate = Ini.get_parsed section "avg_update_rate" Values.rate in
  let* burst_multiplier =
    Ini.get_parsed section "burst_multiplier" Values.float_pos
  in
  let* batch_curve = Ini.get_parsed section "batch" parse_batch_curve in
  match
    Workload.make ~name ~data_capacity ~avg_access_rate ~avg_update_rate
      ~burst_multiplier ~batch_curve
  with
  | w -> Ok w
  | exception Invalid_argument m -> err "[workload]: %s" m

(* --- devices --- *)

let parse_location raw =
  match String.split_on_char '/' raw with
  | [ region; site; building ] ->
    Ok (Location.make ~building ~site ~region)
  | _ -> err "location %S must be \"region/site/building\"" raw

let parse_spare raw =
  match words (String.lowercase_ascii raw) with
  | [ "none" ] -> Ok Spare.No_spare
  | [ "dedicated"; dur ] ->
    let* provisioning_time = Values.duration dur in
    Ok (Spare.Dedicated { provisioning_time })
  | [ "shared"; dur; frac ] ->
    let* provisioning_time = Values.duration dur in
    let* discount = Values.float_pos frac in
    if discount > 1. then err "spare discount %g must be in [0, 1]" discount
    else Ok (Spare.Shared { provisioning_time; discount })
  | _ ->
    err "spare %S must be \"none\", \"dedicated DUR\" or \"shared DUR FRAC\""
      raw

let device_keys =
  [ "location"; "capacity_slots"; "bandwidth_slots"; "enclosure_bandwidth";
    "access_delay"; "cost_fixed"; "cost_per_gib"; "cost_per_mibps";
    "cost_per_shipment"; "spare"; "remote_spare" ]

let parse_device section =
  let* name =
    match section.Ini.arg with
    | Some a -> Ok a
    | None -> err "line %d: [device] needs a name" section.Ini.line
  in
  let* () = reject_unknown section ~known:device_keys in
  let* location = Ini.get_parsed section "location" parse_location in
  let* cap_slots, slot_capacity =
    let* raw = Ini.get section "capacity_slots" in
    let* n, rest = Values.counted raw in
    let* size = Values.size rest in
    Ok (n, size)
  in
  let* bw =
    match Ini.get_opt section "bandwidth_slots" with
    | None -> Ok None
    | Some raw ->
      let* n, rest = Values.counted raw in
      let* rate = Values.rate rest in
      Ok (Some (n, rate))
  in
  let* enclosure_bandwidth =
    Ini.get_parsed_opt section "enclosure_bandwidth" Values.rate
  in
  let* access_delay = Ini.get_parsed_opt section "access_delay" Values.duration in
  let* fixed = Ini.get_parsed_opt section "cost_fixed" Values.money in
  let* per_gib = Ini.get_parsed_opt section "cost_per_gib" Values.float_pos in
  let* per_mib = Ini.get_parsed_opt section "cost_per_mibps" Values.float_pos in
  let* per_shipment =
    Ini.get_parsed_opt section "cost_per_shipment" Values.float_pos
  in
  let* spare = Ini.get_parsed_opt section "spare" parse_spare in
  let* remote_spare = Ini.get_parsed_opt section "remote_spare" parse_spare in
  let cost =
    Cost_model.make
      ~fixed:(Option.value ~default:Money.zero fixed)
      ~per_gib:(Option.value ~default:0. per_gib)
      ~per_mib_per_sec:(Option.value ~default:0. per_mib)
      ~per_shipment:(Option.value ~default:0. per_shipment)
      ()
  in
  match
    Device.make ~name ~location ~max_capacity_slots:cap_slots ~slot_capacity
      ?max_bandwidth_slots:(Option.map fst bw)
      ?slot_bandwidth:(Option.map snd bw) ?enclosure_bandwidth ?access_delay
      ~cost
      ?spare ?remote_spare ()
  with
  | d -> Ok d
  | exception Invalid_argument m -> err "[device %s]: %s" name m

(* --- links --- *)

let link_keys = [ "type"; "bandwidth"; "delay"; "cost_per_mibps"; "cost_per_shipment" ]

let parse_link section =
  let* name =
    match section.Ini.arg with
    | Some a -> Ok a
    | None -> err "line %d: [link] needs a name" section.Ini.line
  in
  let* () = reject_unknown section ~known:link_keys in
  let* kind = Ini.get section "type" in
  let* delay = Ini.get_parsed_opt section "delay" Values.duration in
  let* per_mib = Ini.get_parsed_opt section "cost_per_mibps" Values.float_pos in
  let* per_shipment =
    Ini.get_parsed_opt section "cost_per_shipment" Values.float_pos
  in
  let cost =
    Cost_model.make
      ~per_mib_per_sec:(Option.value ~default:0. per_mib)
      ~per_shipment:(Option.value ~default:0. per_shipment)
      ()
  in
  let* transport =
    match String.lowercase_ascii (String.trim kind) with
    | "shipment" -> Ok Interconnect.Shipment
    | "network" ->
      let* raw = Ini.get section "bandwidth" in
      let* links, rest = Values.counted raw in
      let* link_bandwidth = Values.rate rest in
      Ok (Interconnect.Network { link_bandwidth; links })
    | other -> err "[link %s]: unknown type %S" name other
  in
  match Interconnect.make ~name ~transport ?delay ~cost () with
  | l -> Ok l
  | exception Invalid_argument m -> err "[link %s]: %s" name m

(* --- levels --- *)

let parse_raid raw =
  match String.lowercase_ascii (String.trim raw) with
  | "raid0" | "raid-0" -> Ok Raid.Raid0
  | "raid1" | "raid-1" -> Ok Raid.Raid1
  | "raid10" | "raid-10" -> Ok Raid.Raid10
  | other ->
    if String.length other >= 5 && String.sub other 0 5 = "raid5" then begin
      match String.index_opt other '(' with
      | None -> Ok (Raid.Raid5 { stripe_width = 5 })
      | Some i -> (
        let close = String.index_opt other ')' in
        match close with
        | Some j when j > i + 1 -> (
          let* w = Values.int_pos (String.sub other (i + 1) (j - i - 1)) in
          match Raid.Raid5 { stripe_width = w } with
          | r ->
            (* validate eagerly *)
            let* _ =
              match Raid.capacity_factor r with
              | _ -> Ok ()
              | exception Invalid_argument m -> Error m
            in
            Ok r)
        | _ -> err "malformed raid5 spec %S" raw)
    end
    else err "unknown raid organization %S" raw

let parse_incremental raw =
  match words raw with
  | rep :: rest ->
    let* representation =
      match String.lowercase_ascii rep with
      | "cumulative" -> Ok Schedule.Cumulative
      | "differential" -> Ok Schedule.Differential
      | other -> err "incremental kind %S (cumulative|differential)" other
    in
    let* kvs =
      traverse
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> err "incremental token %S must be key=value" tok
          | Some i ->
            Ok
              ( String.lowercase_ascii (String.sub tok 0 i),
                String.sub tok (i + 1) (String.length tok - i - 1) ))
        rest
    in
    let lookup k = List.assoc_opt k kvs in
    let* acc =
      match lookup "acc" with
      | Some v -> Values.duration v
      | None -> Error "incremental needs acc=DUR"
    in
    let* count =
      match lookup "count" with
      | Some v -> Values.int_pos v
      | None -> Error "incremental needs count=N"
    in
    let* prop =
      match lookup "prop" with
      | Some v -> Values.duration v
      | None -> Ok Duration.zero
    in
    let* hold =
      match lookup "hold" with
      | Some v -> Values.duration v
      | None -> Ok Duration.zero
    in
    (match Schedule.windows ~acc ~prop ~hold () with
    | w -> Ok (representation, w, count)
    | exception Invalid_argument m -> Error m)
  | [] -> Error "empty incremental spec"

let level_keys =
  [ "technique"; "device"; "link"; "raid"; "acc"; "prop"; "hold"; "retention";
    "incremental"; "fragments"; "required" ]

let parse_schedule section =
  let* acc = Ini.get_parsed section "acc" Values.duration in
  let* prop = Ini.get_parsed_opt section "prop" Values.duration in
  let* hold = Ini.get_parsed_opt section "hold" Values.duration in
  let* retention = Ini.get_parsed section "retention" Values.int_pos in
  let* incremental =
    Ini.get_parsed_opt section "incremental" parse_incremental
  in
  match
    (match incremental with
    | None ->
      Schedule.simple ~acc ?prop ?hold ~retention_count:retention ()
    | Some (representation, win, count) ->
      Schedule.make
        ~full:
          (Schedule.windows ~acc
             ?prop ?hold ())
        ~secondary:(representation, win) ~cycle_count:count
        ~retention_count:retention ())
  with
  | s -> Ok s
  | exception Invalid_argument m -> Error m

let parse_level ~devices ~links section =
  let* index =
    match section.Ini.arg with
    | Some a -> Values.int_pos a
    | None -> err "line %d: [level] needs an index" section.Ini.line
  in
  let* () = reject_unknown section ~known:level_keys in
  let* device_name = Ini.get section "device" in
  let* device =
    match
      List.find_opt
        (fun (d : Device.t) -> String.equal d.Device.name device_name)
        devices
    with
    | Some d -> Ok d
    | None ->
      err "[level %d]: unknown device %S (defined: %s)" index device_name
        (String.concat ", "
           (List.map (fun (d : Device.t) -> d.Device.name) devices))
  in
  let* link =
    match Ini.get_opt section "link" with
    | None -> Ok None
    | Some link_name -> (
      match
        List.find_opt
          (fun (l : Interconnect.t) ->
            String.equal l.Interconnect.name link_name)
          links
      with
      | Some l -> Ok (Some l)
      | None ->
        err "[level %d]: unknown link %S (defined: %s)" index link_name
          (String.concat ", "
             (List.map
                (fun (l : Interconnect.t) -> l.Interconnect.name)
                links)))
  in
  let* technique_name = Ini.get section "technique" in
  let* technique =
    match String.lowercase_ascii (String.trim technique_name) with
    | "primary" | "primary_copy" ->
      let* raid =
        match Ini.get_opt section "raid" with
        | Some raw -> parse_raid raw
        | None -> Ok Raid.Raid1
      in
      Ok (Technique.Primary_copy { raid })
    | "split_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Split_mirror s)
    | "snapshot" | "virtual_snapshot" ->
      let* s = parse_schedule section in
      Ok (Technique.Virtual_snapshot s)
    | "backup" ->
      let* s = parse_schedule section in
      Ok (Technique.Backup s)
    | "vaulting" | "vault" ->
      let* s = parse_schedule section in
      Ok (Technique.Vaulting s)
    | "sync_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Remote_mirror { mode = Technique.Synchronous; schedule = s })
    | "async_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Remote_mirror { mode = Technique.Asynchronous; schedule = s })
    | "async_batch_mirror" ->
      let* s = parse_schedule section in
      Ok
        (Technique.Remote_mirror
           { mode = Technique.Asynchronous_batch; schedule = s })
    | "erasure_coded" -> (
      let* s = parse_schedule section in
      let* fragments = Ini.get_parsed section "fragments" Values.int_pos in
      let* required = Ini.get_parsed section "required" Values.int_pos in
      if required <= 0 || fragments < required then
        err "[level %d]: need fragments >= required > 0" index
      else Ok (Technique.Erasure_coded { fragments; required; schedule = s }))
    | other -> err "[level %d]: unknown technique %S" index other
  in
  Ok (index, { Hierarchy.technique; device; link })

(* --- business --- *)

let parse_penalty_rate raw =
  let raw = String.trim raw in
  let strip_suffix suffix =
    let n = String.length raw and m = String.length suffix in
    if n >= m && String.lowercase_ascii (String.sub raw (n - m) m) = suffix
    then Some (String.sub raw 0 (n - m))
    else None
  in
  match strip_suffix "/hr" with
  | Some amount ->
    let* m = Values.money amount in
    Ok (Money_rate.usd_per_hour (Money.to_usd m))
  | None -> (
    match strip_suffix "/s" with
    | Some amount ->
      let* m = Values.money amount in
      Ok (Money_rate.usd_per_sec (Money.to_usd m))
    | None -> err "penalty rate %S must end in /hr or /s" raw)

let business_keys =
  [ "outage_penalty"; "loss_penalty"; "rto"; "rpo"; "total_loss_equivalent" ]

let parse_business section =
  let* () = reject_unknown section ~known:business_keys in
  let* outage_penalty_rate =
    Ini.get_parsed section "outage_penalty" parse_penalty_rate
  in
  let* loss_penalty_rate =
    Ini.get_parsed section "loss_penalty" parse_penalty_rate
  in
  let* rto = Ini.get_parsed_opt section "rto" Values.duration in
  let* rpo = Ini.get_parsed_opt section "rpo" Values.duration in
  let* total_loss =
    Ini.get_parsed_opt section "total_loss_equivalent" Values.duration
  in
  Ok
    (Business.make ~outage_penalty_rate ~loss_penalty_rate
       ?recovery_time_objective:rto ?recovery_point_objective:rpo
       ?total_loss_equivalent:total_loss ())

(* --- scenarios --- *)

let parse_scope raw =
  let parse_one part =
    match words part with
    | [ "object" ] -> Ok Location.Data_object
    | [ "device"; n ] -> Ok (Location.Device n)
    | [ "building"; n ] -> Ok (Location.Building n)
    | [ "site"; n ] -> Ok (Location.Site n)
    | [ "region"; n ] -> Ok (Location.Region n)
    | _ ->
      err
        "scope %S must be \"object\" or \"device|building|site|region NAME\" \
         (combine simultaneous failures with \"+\")"
        part
  in
  match String.split_on_char '+' raw with
  | [ one ] -> parse_one one
  | parts ->
    let* scopes = traverse parse_one parts in
    Ok (Location.Multiple scopes)

let scenario_keys = [ "scope"; "target_age"; "object_size" ]

let parse_scenario section =
  let name =
    Option.value ~default:(Printf.sprintf "line-%d" section.Ini.line)
      section.Ini.arg
  in
  let* () = reject_unknown section ~known:scenario_keys in
  let* scope = Ini.get_parsed section "scope" parse_scope in
  let* target_age = Ini.get_parsed_opt section "target_age" Values.duration in
  let* object_size = Ini.get_parsed_opt section "object_size" Values.size in
  match Scenario.make ~scope ?target_age ?object_size () with
  | s -> Ok (name, s)
  | exception Invalid_argument m -> err "[scenario %s]: %s" name m

(* --- assembly --- *)

let design_of_string ?(validate = true) text =
  let* sections = Ini.parse text in
  let* workload_section = Ini.find_one sections ~kind:"workload" in
  let* workload = parse_workload workload_section in
  let* devices = traverse parse_device (Ini.find_all sections ~kind:"device") in
  let* links = traverse parse_link (Ini.find_all sections ~kind:"link") in
  let* business_section = Ini.find_one sections ~kind:"business" in
  let* business = parse_business business_section in
  let level_sections = Ini.find_all sections ~kind:"level" in
  if level_sections = [] then Error "a design needs at least [level 0]"
  else begin
    let* indexed = traverse (parse_level ~devices ~links) level_sections in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) indexed in
    let* () =
      let rec contiguous expected = function
        | [] -> Ok ()
        | (i, _) :: rest ->
          if i = expected then contiguous (expected + 1) rest
          else err "level indices must be contiguous from 0; found %d" i
      in
      contiguous 0 sorted
    in
    let* hierarchy =
      match Hierarchy.make (List.map snd sorted) with
      | Ok h -> Ok h
      | Error m -> err "hierarchy: %s" m
    in
    let design =
      Design.make ~name:workload.Workload.name ~workload ~hierarchy ~business
        ()
    in
    if not validate then Ok design
    else
      match Design.validate design with
      | Ok () -> Ok design
      | Error es -> err "design invalid: %s" (String.concat "; " es)
  end

(* --- serialization --- *)

(* A float literal [Values.number_and_unit] can read back to the same bits.
   The grammar has no exponent syntax, so scientific notation must be
   expanded into plain decimal digits. *)
let lit v =
  if not (Float.is_finite v) then invalid_arg "Spec.lit: non-finite value"
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else begin
    let round_trips s = float_of_string s = v in
    let shortest =
      let rec try_prec p =
        if p > 17 then Printf.sprintf "%.17g" v
        else
          let s = Printf.sprintf "%.*g" p v in
          if round_trips s then s else try_prec (p + 1)
      in
      try_prec 15
    in
    if String.contains shortest 'e' || String.contains shortest 'E' then begin
      (* Only sub-unity magnitudes reach here (integers were handled
         above); 25 fractional digits carry >= 17 significant ones for
         anything down to 1e-8, far below any physical quantity in a
         design. *)
      let s = Printf.sprintf "%.25f" v in
      if round_trips s then s else shortest (* give up; caller will error *)
    end
    else shortest
  end

let duration_str d = lit (Duration.to_seconds d) ^ "s"
let size_str s = lit (Size.to_bytes s) ^ " B"
let rate_str r = lit (Rate.to_bytes_per_sec r) ^ " B/s"
let money_str m = "$" ^ lit (Money.to_usd m)
let penalty_str r = "$" ^ lit (Money_rate.to_usd_per_sec r) ^ "/s"

let location_str (l : Location.t) =
  Printf.sprintf "%s/%s/%s" l.Location.region l.Location.site
    l.Location.building

let spare_str = function
  | Spare.No_spare -> "none"
  | Spare.Dedicated { provisioning_time } ->
    "dedicated " ^ duration_str provisioning_time
  | Spare.Shared { provisioning_time; discount } ->
    Printf.sprintf "shared %s %s" (duration_str provisioning_time)
      (lit discount)

let raid_str = function
  | Raid.Raid0 -> "raid0"
  | Raid.Raid1 -> "raid1"
  | Raid.Raid10 -> "raid10"
  | Raid.Raid5 { stripe_width } -> Printf.sprintf "raid5(%d)" stripe_width

let rec scope_str = function
  | Location.Data_object -> Ok "object"
  | Location.Device n -> Ok ("device " ^ n)
  | Location.Building n -> Ok ("building " ^ n)
  | Location.Site n -> Ok ("site " ^ n)
  | Location.Region n -> Ok ("region " ^ n)
  | Location.Multiple scopes ->
    let* parts = traverse scope_str scopes in
    Ok (String.concat "+" parts)

let emit_schedule buf (s : Schedule.t) =
  if s.Schedule.copy_representation <> Schedule.Full then
    err "cannot serialize a non-full copy representation"
  else begin
    let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
    kv "acc" (duration_str s.Schedule.full.Schedule.accumulation);
    if not (Duration.is_zero s.Schedule.full.Schedule.propagation) then
      kv "prop" (duration_str s.Schedule.full.Schedule.propagation);
    if not (Duration.is_zero s.Schedule.full.Schedule.hold) then
      kv "hold" (duration_str s.Schedule.full.Schedule.hold);
    kv "retention" (string_of_int s.Schedule.retention_count);
    (match s.Schedule.secondary with
    | None -> ()
    | Some (representation, w) ->
      kv "incremental"
        (Printf.sprintf "%s acc=%s prop=%s hold=%s count=%d"
           (match representation with
           | Schedule.Cumulative -> "cumulative"
           | Schedule.Differential -> "differential"
           | Schedule.Full -> assert false (* rejected by Schedule.make *))
           (duration_str w.Schedule.accumulation)
           (duration_str w.Schedule.propagation)
           (duration_str w.Schedule.hold)
           s.Schedule.cycle_count));
    Ok ()
  end

let emit_level buf ~index (level : Hierarchy.level) =
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
  Buffer.add_string buf (Printf.sprintf "[level %d]\n" index);
  let technique_name, schedule, extra =
    match level.Hierarchy.technique with
    | Technique.Primary_copy { raid } ->
      ("primary", None, [ ("raid", raid_str raid) ])
    | Technique.Split_mirror s -> ("split_mirror", Some s, [])
    | Technique.Virtual_snapshot s -> ("snapshot", Some s, [])
    | Technique.Backup s -> ("backup", Some s, [])
    | Technique.Vaulting s -> ("vaulting", Some s, [])
    | Technique.Remote_mirror { mode; schedule } ->
      ( (match mode with
        | Technique.Synchronous -> "sync_mirror"
        | Technique.Asynchronous -> "async_mirror"
        | Technique.Asynchronous_batch -> "async_batch_mirror"),
        Some schedule,
        [] )
    | Technique.Erasure_coded { fragments; required; schedule } ->
      ( "erasure_coded",
        Some schedule,
        [
          ("fragments", string_of_int fragments);
          ("required", string_of_int required);
        ] )
  in
  kv "technique" technique_name;
  kv "device" level.Hierarchy.device.Device.name;
  (match level.Hierarchy.link with
  | None -> ()
  | Some l -> kv "link" l.Interconnect.name);
  List.iter (fun (k, v) -> kv k v) extra;
  let* () =
    match schedule with None -> Ok () | Some s -> emit_schedule buf s
  in
  Buffer.add_char buf '\n';
  Ok ()

let emit_device buf (d : Device.t) =
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
  Buffer.add_string buf (Printf.sprintf "[device %s]\n" d.Device.name);
  kv "location" (location_str d.Device.location);
  kv "capacity_slots"
    (Printf.sprintf "%d x %s" d.Device.max_capacity_slots
       (size_str d.Device.slot_capacity));
  if d.Device.max_bandwidth_slots > 0 then
    kv "bandwidth_slots"
      (Printf.sprintf "%d x %s" d.Device.max_bandwidth_slots
         (rate_str d.Device.slot_bandwidth));
  if not (Rate.is_zero d.Device.enclosure_bandwidth) then
    kv "enclosure_bandwidth" (rate_str d.Device.enclosure_bandwidth);
  if not (Duration.is_zero d.Device.access_delay) then
    kv "access_delay" (duration_str d.Device.access_delay);
  let c = d.Device.cost in
  if not (Money.is_zero c.Cost_model.fixed) then
    kv "cost_fixed" (money_str c.Cost_model.fixed);
  if c.Cost_model.per_gib <> 0. then kv "cost_per_gib" (lit c.Cost_model.per_gib);
  if c.Cost_model.per_mib_per_sec <> 0. then
    kv "cost_per_mibps" (lit c.Cost_model.per_mib_per_sec);
  if c.Cost_model.per_shipment <> 0. then
    kv "cost_per_shipment" (lit c.Cost_model.per_shipment);
  if d.Device.spare <> Spare.No_spare then kv "spare" (spare_str d.Device.spare);
  if d.Device.remote_spare <> Spare.No_spare then
    kv "remote_spare" (spare_str d.Device.remote_spare);
  Buffer.add_char buf '\n'

let emit_link buf (l : Interconnect.t) =
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
  Buffer.add_string buf (Printf.sprintf "[link %s]\n" l.Interconnect.name);
  (match l.Interconnect.transport with
  | Interconnect.Shipment -> kv "type" "shipment"
  | Interconnect.Network { link_bandwidth; links } ->
    kv "type" "network";
    kv "bandwidth" (Printf.sprintf "%d x %s" links (rate_str link_bandwidth)));
  if not (Duration.is_zero l.Interconnect.delay) then
    kv "delay" (duration_str l.Interconnect.delay);
  let c = l.Interconnect.cost in
  if c.Cost_model.per_mib_per_sec <> 0. then
    kv "cost_per_mibps" (lit c.Cost_model.per_mib_per_sec);
  if c.Cost_model.per_shipment <> 0. then
    kv "cost_per_shipment" (lit c.Cost_model.per_shipment);
  Buffer.add_char buf '\n'

let emit_scenario buf (name, (sc : Scenario.t)) =
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
  Buffer.add_string buf (Printf.sprintf "[scenario %s]\n" name);
  let* scope = scope_str sc.Scenario.scope in
  kv "scope" scope;
  if not (Duration.is_zero sc.Scenario.target_age) then
    kv "target_age" (duration_str sc.Scenario.target_age);
  (match sc.Scenario.object_size with
  | None -> ()
  | Some s -> kv "object_size" (size_str s));
  Buffer.add_char buf '\n';
  Ok ()

let design_to_string ?(scenarios = []) (d : Design.t) =
  let buf = Buffer.create 1024 in
  let kv k v = Buffer.add_string buf (Printf.sprintf "%s = %s\n" k v) in
  let* () =
    if d.Design.background = [] then Ok ()
    else err "cannot serialize a design with background (portfolio) demands"
  in
  (* The parser names the design after its workload, so the workload's own
     name is replaced by the design's: parse (print d) preserves
     [Design.name], which is the identity the corpus and the CLI report. *)
  let w = d.Design.workload in
  Buffer.add_string buf "[workload]\n";
  kv "name" d.Design.name;
  kv "data_capacity" (size_str w.Workload.data_capacity);
  kv "avg_access_rate" (rate_str w.Workload.avg_access_rate);
  kv "avg_update_rate" (rate_str w.Workload.avg_update_rate);
  kv "burst_multiplier" (lit w.Workload.burst_multiplier);
  kv "batch"
    (String.concat ", "
       (List.map
          (fun (win, rate) ->
            Printf.sprintf "%s: %s" (duration_str win) (rate_str rate))
          (Batch_curve.samples w.Workload.batch_curve)));
  Buffer.add_char buf '\n';
  let levels = Hierarchy.levels d.Design.hierarchy in
  let distinct_by_name name_of xs =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        match List.find_opt (fun y -> name_of y = name_of x) acc with
        | None -> Ok (acc @ [ x ])
        | Some y ->
          if y = x then Ok acc
          else err "two distinct definitions share the name %S" (name_of x))
      (Ok []) xs
  in
  let* devices =
    distinct_by_name
      (fun (dev : Device.t) -> dev.Device.name)
      (List.map (fun (l : Hierarchy.level) -> l.Hierarchy.device) levels)
  in
  let* links =
    distinct_by_name
      (fun (l : Interconnect.t) -> l.Interconnect.name)
      (List.filter_map (fun (l : Hierarchy.level) -> l.Hierarchy.link) levels)
  in
  List.iter (emit_device buf) devices;
  List.iter (emit_link buf) links;
  let* () =
    List.fold_left
      (fun acc (index, level) ->
        let* () = acc in
        emit_level buf ~index level)
      (Ok ())
      (List.mapi (fun i l -> (i, l)) levels)
  in
  let b = d.Design.business in
  Buffer.add_string buf "[business]\n";
  kv "outage_penalty" (penalty_str b.Business.outage_penalty_rate);
  kv "loss_penalty" (penalty_str b.Business.loss_penalty_rate);
  (match b.Business.recovery_time_objective with
  | None -> ()
  | Some rto -> kv "rto" (duration_str rto));
  (match b.Business.recovery_point_objective with
  | None -> ()
  | Some rpo -> kv "rpo" (duration_str rpo));
  kv "total_loss_equivalent" (duration_str b.Business.total_loss_equivalent);
  let* () =
    List.fold_left
      (fun acc named ->
        let* () = acc in
        Buffer.add_char buf '\n';
        emit_scenario buf named)
      (Ok ()) scenarios
  in
  Ok (Buffer.contents buf)

type load_error = Unreadable of string | Invalid of string

let load_error_message = function Unreadable m | Invalid m -> m

(* [Sys_error]'s message already names the file ("path: No such file or
   directory" / "path: Permission denied"); raising it out of here
   instead would hand callers a backtrace where they need a filename. *)
let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error m -> Error (Unreadable m)

let load_design_file ?validate path =
  match read_file path with
  | Error _ as e -> e
  | Ok text ->
    Result.map_error (fun m -> Invalid m) (design_of_string ?validate text)

let design_of_file ?validate path =
  Result.map_error load_error_message (load_design_file ?validate path)

let scenarios_of_string text =
  let* sections = Ini.parse text in
  traverse parse_scenario (Ini.find_all sections ~kind:"scenario")

let load_scenarios_file path =
  match read_file path with
  | Error _ as e -> e
  | Ok text -> Result.map_error (fun m -> Invalid m) (scenarios_of_string text)

let scenarios_of_file path =
  Result.map_error load_error_message (load_scenarios_file path)
