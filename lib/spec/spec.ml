open Storage_units
open Storage_workload
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let rec traverse f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = traverse f rest in
    Ok (y :: ys)

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let reject_unknown section ~known =
  match Ini.unknown_keys section ~known with
  | [] -> Ok ()
  | ks ->
    err "[%s%s]: unknown key%s %s" section.Ini.kind
      (match section.Ini.arg with Some a -> " " ^ a | None -> "")
      (if List.length ks > 1 then "s" else "")
      (String.concat ", " ks)

(* --- workload --- *)

let parse_batch_curve raw =
  let samples = String.split_on_char ',' raw in
  let* parsed =
    traverse
      (fun sample ->
        match String.index_opt sample ':' with
        | None -> err "batch sample %S must be \"WINDOW: RATE\"" sample
        | Some i ->
          let* win = Values.duration (String.sub sample 0 i) in
          let* rate =
            Values.rate
              (String.sub sample (i + 1) (String.length sample - i - 1))
          in
          Ok (win, rate))
      samples
  in
  match Batch_curve.of_samples parsed with
  | curve -> Ok curve
  | exception Invalid_argument m -> Error m

let parse_workload section =
  let* () =
    reject_unknown section
      ~known:
        [ "name"; "data_capacity"; "avg_access_rate"; "avg_update_rate";
          "burst_multiplier"; "batch" ]
  in
  let name = Option.value ~default:"workload" (Ini.get_opt section "name") in
  let* data_capacity = Ini.get_parsed section "data_capacity" Values.size in
  let* avg_access_rate = Ini.get_parsed section "avg_access_rate" Values.rate in
  let* avg_update_rate = Ini.get_parsed section "avg_update_rate" Values.rate in
  let* burst_multiplier =
    Ini.get_parsed section "burst_multiplier" Values.float_pos
  in
  let* batch_curve = Ini.get_parsed section "batch" parse_batch_curve in
  match
    Workload.make ~name ~data_capacity ~avg_access_rate ~avg_update_rate
      ~burst_multiplier ~batch_curve
  with
  | w -> Ok w
  | exception Invalid_argument m -> err "[workload]: %s" m

(* --- devices --- *)

let parse_location raw =
  match String.split_on_char '/' raw with
  | [ region; site; building ] ->
    Ok (Location.make ~building ~site ~region)
  | _ -> err "location %S must be \"region/site/building\"" raw

let parse_spare raw =
  match words (String.lowercase_ascii raw) with
  | [ "none" ] -> Ok Spare.No_spare
  | [ "dedicated"; dur ] ->
    let* provisioning_time = Values.duration dur in
    Ok (Spare.Dedicated { provisioning_time })
  | [ "shared"; dur; frac ] ->
    let* provisioning_time = Values.duration dur in
    let* discount = Values.float_pos frac in
    if discount > 1. then err "spare discount %g must be in [0, 1]" discount
    else Ok (Spare.Shared { provisioning_time; discount })
  | _ ->
    err "spare %S must be \"none\", \"dedicated DUR\" or \"shared DUR FRAC\""
      raw

let device_keys =
  [ "location"; "capacity_slots"; "bandwidth_slots"; "enclosure_bandwidth";
    "access_delay"; "cost_fixed"; "cost_per_gib"; "cost_per_mibps";
    "cost_per_shipment"; "spare"; "remote_spare" ]

let parse_device section =
  let* name =
    match section.Ini.arg with
    | Some a -> Ok a
    | None -> err "line %d: [device] needs a name" section.Ini.line
  in
  let* () = reject_unknown section ~known:device_keys in
  let* location = Ini.get_parsed section "location" parse_location in
  let* cap_slots, slot_capacity =
    let* raw = Ini.get section "capacity_slots" in
    let* n, rest = Values.counted raw in
    let* size = Values.size rest in
    Ok (n, size)
  in
  let* bw =
    match Ini.get_opt section "bandwidth_slots" with
    | None -> Ok None
    | Some raw ->
      let* n, rest = Values.counted raw in
      let* rate = Values.rate rest in
      Ok (Some (n, rate))
  in
  let* enclosure_bandwidth =
    Ini.get_parsed_opt section "enclosure_bandwidth" Values.rate
  in
  let* access_delay = Ini.get_parsed_opt section "access_delay" Values.duration in
  let* fixed = Ini.get_parsed_opt section "cost_fixed" Values.money in
  let* per_gib = Ini.get_parsed_opt section "cost_per_gib" Values.float_pos in
  let* per_mib = Ini.get_parsed_opt section "cost_per_mibps" Values.float_pos in
  let* per_shipment =
    Ini.get_parsed_opt section "cost_per_shipment" Values.float_pos
  in
  let* spare = Ini.get_parsed_opt section "spare" parse_spare in
  let* remote_spare = Ini.get_parsed_opt section "remote_spare" parse_spare in
  let cost =
    Cost_model.make
      ~fixed:(Option.value ~default:Money.zero fixed)
      ~per_gib:(Option.value ~default:0. per_gib)
      ~per_mib_per_sec:(Option.value ~default:0. per_mib)
      ~per_shipment:(Option.value ~default:0. per_shipment)
      ()
  in
  match
    Device.make ~name ~location ~max_capacity_slots:cap_slots ~slot_capacity
      ?max_bandwidth_slots:(Option.map fst bw)
      ?slot_bandwidth:(Option.map snd bw) ?enclosure_bandwidth ?access_delay
      ~cost
      ?spare ?remote_spare ()
  with
  | d -> Ok d
  | exception Invalid_argument m -> err "[device %s]: %s" name m

(* --- links --- *)

let link_keys = [ "type"; "bandwidth"; "delay"; "cost_per_mibps"; "cost_per_shipment" ]

let parse_link section =
  let* name =
    match section.Ini.arg with
    | Some a -> Ok a
    | None -> err "line %d: [link] needs a name" section.Ini.line
  in
  let* () = reject_unknown section ~known:link_keys in
  let* kind = Ini.get section "type" in
  let* delay = Ini.get_parsed_opt section "delay" Values.duration in
  let* per_mib = Ini.get_parsed_opt section "cost_per_mibps" Values.float_pos in
  let* per_shipment =
    Ini.get_parsed_opt section "cost_per_shipment" Values.float_pos
  in
  let cost =
    Cost_model.make
      ~per_mib_per_sec:(Option.value ~default:0. per_mib)
      ~per_shipment:(Option.value ~default:0. per_shipment)
      ()
  in
  let* transport =
    match String.lowercase_ascii (String.trim kind) with
    | "shipment" -> Ok Interconnect.Shipment
    | "network" ->
      let* raw = Ini.get section "bandwidth" in
      let* links, rest = Values.counted raw in
      let* link_bandwidth = Values.rate rest in
      Ok (Interconnect.Network { link_bandwidth; links })
    | other -> err "[link %s]: unknown type %S" name other
  in
  match Interconnect.make ~name ~transport ?delay ~cost () with
  | l -> Ok l
  | exception Invalid_argument m -> err "[link %s]: %s" name m

(* --- levels --- *)

let parse_raid raw =
  match String.lowercase_ascii (String.trim raw) with
  | "raid0" | "raid-0" -> Ok Raid.Raid0
  | "raid1" | "raid-1" -> Ok Raid.Raid1
  | "raid10" | "raid-10" -> Ok Raid.Raid10
  | other ->
    if String.length other >= 5 && String.sub other 0 5 = "raid5" then begin
      match String.index_opt other '(' with
      | None -> Ok (Raid.Raid5 { stripe_width = 5 })
      | Some i -> (
        let close = String.index_opt other ')' in
        match close with
        | Some j when j > i + 1 -> (
          let* w = Values.int_pos (String.sub other (i + 1) (j - i - 1)) in
          match Raid.Raid5 { stripe_width = w } with
          | r ->
            (* validate eagerly *)
            let* _ =
              match Raid.capacity_factor r with
              | _ -> Ok ()
              | exception Invalid_argument m -> Error m
            in
            Ok r)
        | _ -> err "malformed raid5 spec %S" raw)
    end
    else err "unknown raid organization %S" raw

let parse_incremental raw =
  match words raw with
  | rep :: rest ->
    let* representation =
      match String.lowercase_ascii rep with
      | "cumulative" -> Ok Schedule.Cumulative
      | "differential" -> Ok Schedule.Differential
      | other -> err "incremental kind %S (cumulative|differential)" other
    in
    let* kvs =
      traverse
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> err "incremental token %S must be key=value" tok
          | Some i ->
            Ok
              ( String.lowercase_ascii (String.sub tok 0 i),
                String.sub tok (i + 1) (String.length tok - i - 1) ))
        rest
    in
    let lookup k = List.assoc_opt k kvs in
    let* acc =
      match lookup "acc" with
      | Some v -> Values.duration v
      | None -> Error "incremental needs acc=DUR"
    in
    let* count =
      match lookup "count" with
      | Some v -> Values.int_pos v
      | None -> Error "incremental needs count=N"
    in
    let* prop =
      match lookup "prop" with
      | Some v -> Values.duration v
      | None -> Ok Duration.zero
    in
    let* hold =
      match lookup "hold" with
      | Some v -> Values.duration v
      | None -> Ok Duration.zero
    in
    (match Schedule.windows ~acc ~prop ~hold () with
    | w -> Ok (representation, w, count)
    | exception Invalid_argument m -> Error m)
  | [] -> Error "empty incremental spec"

let level_keys =
  [ "technique"; "device"; "link"; "raid"; "acc"; "prop"; "hold"; "retention";
    "incremental"; "fragments"; "required" ]

let parse_schedule section =
  let* acc = Ini.get_parsed section "acc" Values.duration in
  let* prop = Ini.get_parsed_opt section "prop" Values.duration in
  let* hold = Ini.get_parsed_opt section "hold" Values.duration in
  let* retention = Ini.get_parsed section "retention" Values.int_pos in
  let* incremental =
    Ini.get_parsed_opt section "incremental" parse_incremental
  in
  match
    (match incremental with
    | None ->
      Schedule.simple ~acc ?prop ?hold ~retention_count:retention ()
    | Some (representation, win, count) ->
      Schedule.make
        ~full:
          (Schedule.windows ~acc
             ?prop ?hold ())
        ~secondary:(representation, win) ~cycle_count:count
        ~retention_count:retention ())
  with
  | s -> Ok s
  | exception Invalid_argument m -> Error m

let parse_level ~devices ~links section =
  let* index =
    match section.Ini.arg with
    | Some a -> Values.int_pos a
    | None -> err "line %d: [level] needs an index" section.Ini.line
  in
  let* () = reject_unknown section ~known:level_keys in
  let* device_name = Ini.get section "device" in
  let* device =
    match
      List.find_opt
        (fun (d : Device.t) -> String.equal d.Device.name device_name)
        devices
    with
    | Some d -> Ok d
    | None ->
      err "[level %d]: unknown device %S (defined: %s)" index device_name
        (String.concat ", "
           (List.map (fun (d : Device.t) -> d.Device.name) devices))
  in
  let* link =
    match Ini.get_opt section "link" with
    | None -> Ok None
    | Some link_name -> (
      match
        List.find_opt
          (fun (l : Interconnect.t) ->
            String.equal l.Interconnect.name link_name)
          links
      with
      | Some l -> Ok (Some l)
      | None ->
        err "[level %d]: unknown link %S (defined: %s)" index link_name
          (String.concat ", "
             (List.map
                (fun (l : Interconnect.t) -> l.Interconnect.name)
                links)))
  in
  let* technique_name = Ini.get section "technique" in
  let* technique =
    match String.lowercase_ascii (String.trim technique_name) with
    | "primary" | "primary_copy" ->
      let* raid =
        match Ini.get_opt section "raid" with
        | Some raw -> parse_raid raw
        | None -> Ok Raid.Raid1
      in
      Ok (Technique.Primary_copy { raid })
    | "split_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Split_mirror s)
    | "snapshot" | "virtual_snapshot" ->
      let* s = parse_schedule section in
      Ok (Technique.Virtual_snapshot s)
    | "backup" ->
      let* s = parse_schedule section in
      Ok (Technique.Backup s)
    | "vaulting" | "vault" ->
      let* s = parse_schedule section in
      Ok (Technique.Vaulting s)
    | "sync_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Remote_mirror { mode = Technique.Synchronous; schedule = s })
    | "async_mirror" ->
      let* s = parse_schedule section in
      Ok (Technique.Remote_mirror { mode = Technique.Asynchronous; schedule = s })
    | "async_batch_mirror" ->
      let* s = parse_schedule section in
      Ok
        (Technique.Remote_mirror
           { mode = Technique.Asynchronous_batch; schedule = s })
    | "erasure_coded" -> (
      let* s = parse_schedule section in
      let* fragments = Ini.get_parsed section "fragments" Values.int_pos in
      let* required = Ini.get_parsed section "required" Values.int_pos in
      if required <= 0 || fragments < required then
        err "[level %d]: need fragments >= required > 0" index
      else Ok (Technique.Erasure_coded { fragments; required; schedule = s }))
    | other -> err "[level %d]: unknown technique %S" index other
  in
  Ok (index, { Hierarchy.technique; device; link })

(* --- business --- *)

let parse_penalty_rate raw =
  let raw = String.trim raw in
  let strip_suffix suffix =
    let n = String.length raw and m = String.length suffix in
    if n >= m && String.lowercase_ascii (String.sub raw (n - m) m) = suffix
    then Some (String.sub raw 0 (n - m))
    else None
  in
  match strip_suffix "/hr" with
  | Some amount ->
    let* m = Values.money amount in
    Ok (Money_rate.usd_per_hour (Money.to_usd m))
  | None -> (
    match strip_suffix "/s" with
    | Some amount ->
      let* m = Values.money amount in
      Ok (Money_rate.usd_per_sec (Money.to_usd m))
    | None -> err "penalty rate %S must end in /hr or /s" raw)

let business_keys =
  [ "outage_penalty"; "loss_penalty"; "rto"; "rpo"; "total_loss_equivalent" ]

let parse_business section =
  let* () = reject_unknown section ~known:business_keys in
  let* outage_penalty_rate =
    Ini.get_parsed section "outage_penalty" parse_penalty_rate
  in
  let* loss_penalty_rate =
    Ini.get_parsed section "loss_penalty" parse_penalty_rate
  in
  let* rto = Ini.get_parsed_opt section "rto" Values.duration in
  let* rpo = Ini.get_parsed_opt section "rpo" Values.duration in
  let* total_loss =
    Ini.get_parsed_opt section "total_loss_equivalent" Values.duration
  in
  Ok
    (Business.make ~outage_penalty_rate ~loss_penalty_rate
       ?recovery_time_objective:rto ?recovery_point_objective:rpo
       ?total_loss_equivalent:total_loss ())

(* --- scenarios --- *)

let parse_scope raw =
  let parse_one part =
    match words part with
    | [ "object" ] -> Ok Location.Data_object
    | [ "device"; n ] -> Ok (Location.Device n)
    | [ "building"; n ] -> Ok (Location.Building n)
    | [ "site"; n ] -> Ok (Location.Site n)
    | [ "region"; n ] -> Ok (Location.Region n)
    | _ ->
      err
        "scope %S must be \"object\" or \"device|building|site|region NAME\" \
         (combine simultaneous failures with \"+\")"
        part
  in
  match String.split_on_char '+' raw with
  | [ one ] -> parse_one one
  | parts ->
    let* scopes = traverse parse_one parts in
    Ok (Location.Multiple scopes)

let scenario_keys = [ "scope"; "target_age"; "object_size" ]

let parse_scenario section =
  let name =
    Option.value ~default:(Printf.sprintf "line-%d" section.Ini.line)
      section.Ini.arg
  in
  let* () = reject_unknown section ~known:scenario_keys in
  let* scope = Ini.get_parsed section "scope" parse_scope in
  let* target_age = Ini.get_parsed_opt section "target_age" Values.duration in
  let* object_size = Ini.get_parsed_opt section "object_size" Values.size in
  match Scenario.make ~scope ?target_age ?object_size () with
  | s -> Ok (name, s)
  | exception Invalid_argument m -> err "[scenario %s]: %s" name m

(* --- assembly --- *)

let design_of_string ?(validate = true) text =
  let* sections = Ini.parse text in
  let* workload_section = Ini.find_one sections ~kind:"workload" in
  let* workload = parse_workload workload_section in
  let* devices = traverse parse_device (Ini.find_all sections ~kind:"device") in
  let* links = traverse parse_link (Ini.find_all sections ~kind:"link") in
  let* business_section = Ini.find_one sections ~kind:"business" in
  let* business = parse_business business_section in
  let level_sections = Ini.find_all sections ~kind:"level" in
  if level_sections = [] then Error "a design needs at least [level 0]"
  else begin
    let* indexed = traverse (parse_level ~devices ~links) level_sections in
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) indexed in
    let* () =
      let rec contiguous expected = function
        | [] -> Ok ()
        | (i, _) :: rest ->
          if i = expected then contiguous (expected + 1) rest
          else err "level indices must be contiguous from 0; found %d" i
      in
      contiguous 0 sorted
    in
    let* hierarchy =
      match Hierarchy.make (List.map snd sorted) with
      | Ok h -> Ok h
      | Error m -> err "hierarchy: %s" m
    in
    let design =
      Design.make ~name:workload.Workload.name ~workload ~hierarchy ~business
        ()
    in
    if not validate then Ok design
    else
      match Design.validate design with
      | Ok () -> Ok design
      | Error es -> err "design invalid: %s" (String.concat "; " es)
  end

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error m -> Error m

let design_of_file ?validate path =
  let* text = read_file path in
  design_of_string ?validate text

let scenarios_of_string text =
  let* sections = Ini.parse text in
  traverse parse_scenario (Ini.find_all sections ~kind:"scenario")

let scenarios_of_file path =
  let* text = read_file path in
  scenarios_of_string text
