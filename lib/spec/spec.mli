open Storage_model

(** Assembling designs from the textual description language.

    A design file contains one [[workload]] section, one [[business]]
    section, any number of [[device NAME]] and [[link NAME]] sections, and
    a contiguous run of [[level 0]], [[level 1]], ... sections composing
    the protection hierarchy. Optional [[scenario NAME]] sections describe
    failure scenarios to evaluate. See [examples/designs/] for complete
    files, and the key reference below.

    {v
    [workload]
    name = orders-db
    data_capacity = 500 GiB
    avg_access_rate = 4 MiB/s
    avg_update_rate = 1.5 MiB/s
    burst_multiplier = 8
    batch = 1min: 1.2 MiB/s, 12hr: 600 KiB/s, 1d: 500 KiB/s

    [device array]
    location = emea/hq/dc-1            # region/site/building
    capacity_slots = 64 x 146 GiB
    bandwidth_slots = 64 x 30 MiB/s    # optional (capacity-only if absent)
    enclosure_bandwidth = 400 MiB/s    # optional
    access_delay = 0                   # optional
    cost_fixed = $60k                  # optional, with...
    cost_per_gib = 15                  # ...per-capacity,
    cost_per_mibps = 0                 # ...per-bandwidth,
    cost_per_shipment = 0              # ...per-shipment components
    spare = dedicated 2min             # none | dedicated DUR | shared DUR FRAC
    remote_spare = shared 9hr 0.2      # optional

    [link san]
    type = network                     # network | shipment
    bandwidth = 2 x 200 MiB/s          # network only
    delay = 0
    cost_per_mibps = 0
    cost_per_shipment = 0              # shipment only

    [level 0]
    technique = primary                # primary | split_mirror | snapshot |
    device = array                     # backup | vaulting | sync_mirror |
    raid = raid1                       # async_mirror | async_batch_mirror
    [level 1]
    technique = backup
    device = tapes
    link = san
    acc = 24hr
    prop = 6hr
    hold = 1hr
    retention = 14
    incremental = cumulative acc=24hr prop=12hr hold=1hr count=5  # optional

    [business]
    outage_penalty = $20k/hr
    loss_penalty = $20k/hr
    rto = 4hr                          # optional
    rpo = 48hr                         # optional

    [scenario array-failure]
    scope = device array               # object | device N | building N |
    target_age = 0                     # site N | region N
    object_size = 1 MiB                # object scope only
    v} *)

val design_of_string : ?validate:bool -> string -> (Design.t, string) result
(** Parses and assembles a full design; errors carry section/line
    context. [?validate] (default [true]) runs {!Design.validate} as the
    final step, so an [Ok] design is known evaluable; [~validate:false]
    stops after assembly — the loophole [ssdep lint] uses to report a
    statically invalid design's findings (with rule codes) instead of a
    load error. Hierarchy structure is always enforced: a level list
    {!Storage_hierarchy.Hierarchy.make} rejects cannot be represented as
    a [Design.t] at all. *)

val design_of_file : ?validate:bool -> string -> (Design.t, string) result

type load_error =
  | Unreadable of string
      (** The file could not be read at all (missing, permission denied);
          the message names the file and the OS error. A front end should
          treat this as a configuration error (`ssdep` exits 2), distinct
          from a file that reads fine but does not parse. *)
  | Invalid of string
      (** The file was read but is not a valid design: parse or
          validation error with section/line context. *)

val load_error_message : load_error -> string

val load_design_file :
  ?validate:bool -> string -> (Design.t, load_error) result
(** {!design_of_file} with the error split into {!load_error} cases, for
    callers that map unreadable paths and invalid contents to different
    exit codes. *)

val load_scenarios_file :
  string -> ((string * Scenario.t) list, load_error) result

val scenarios_of_string :
  string -> ((string * Scenario.t) list, string) result
(** The named [[scenario]] sections of a design file (empty list when
    none). *)

val scenarios_of_file : string -> ((string * Scenario.t) list, string) result

val design_to_string :
  ?scenarios:(string * Scenario.t) list -> Design.t -> (string, string) result
(** The inverse of {!design_of_string}: renders a design (and optional
    named scenarios) in the description language, losslessly — every
    quantity is emitted in its base unit (seconds, bytes, dollars) with a
    shortest-round-trip decimal literal, so
    [design_of_string (design_to_string d)] rebuilds a design whose
    {!Design.fingerprint} matches [d]'s up to one systematic renaming: the
    parser names the workload after the design. Used by the fuzzing
    corpus ({!Storage_testkit}) to persist counterexamples as replayable
    [.ssdep] files. Errors on designs the language cannot express
    (background portfolio demands, non-full copy representations, name
    collisions between structurally distinct devices or links). *)
