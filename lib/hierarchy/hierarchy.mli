open Storage_units
open Storage_device
open Storage_protection

(** The retrieval-point propagation hierarchy (§3.2).

    Level 0 is the primary copy; each higher level receives RPs from the one
    below it, over an optional interconnect, and stores them on its device.
    The module checks the paper's parameter conventions, computes each
    level's time lag relative to the primary and its guaranteed range of
    retrieval points (§3.3.2, Figure 3), and determines which levels survive
    a failure scope. *)

type level = {
  technique : Technique.t;
  device : Device.t;  (** where this level's RPs are stored *)
  link : Interconnect.t option;
      (** transport carrying RPs from the previous level (None = same
          device or direct attachment) *)
}

type t

val make : level list -> (t, string) result
(** Validates the structural conventions:
    - level 0 is a [Primary_copy], and no other level is;
    - every level above 0 has a schedule;
    - retention counts do not decrease with level
      ([retCnt_{i+1} >= retCnt_i], §3.2.1 convention 2);
    - accumulation windows do not shrink below the previous cycle period
      ([accW_{i+1} >= cyclePer_i]);
    - colocated techniques (split mirror, virtual snapshot) are hosted on
      the primary device. *)

val make_exn : level list -> t
(** Raises [Invalid_argument] with the validation message. *)

val hold_retention_inversions : t -> int list
(** Levels [j >= 2] whose hold window exceeds level [j-1]'s retention
    window ([holdW_j > retW_{j-1}], violating §3.2.1 convention 3): extra
    retention capacity is then required at level [j-1]'s device. In
    increasing order. The case study's vaulting level does this
    deliberately, so it is an advisory, not an error — [Storage_lint]
    reports it as [SSDEP-I001]. *)

val warnings : t -> string list
(** Non-fatal advisory checks, currently {!hold_retention_inversions}
    rendered as human-readable messages. Compatibility shim: new code
    should prefer [Storage_lint.check], which carries stable rule codes
    and structured locations. *)

val length : t -> int
val level : t -> int -> level
val levels : t -> level list
val primary : t -> level

val upstream_lag : t -> int -> Duration.t
(** Sum over levels [1..j-1] of [holdW + propW] of the onward (full)
    representation: the propagation delay accumulated before level [j]'s own
    windows apply. Zero for levels 0 and 1. *)

val worst_lag : t -> int -> Duration.t
(** Worst-case staleness of level [j] relative to the primary:
    [upstream + holdW_j + max propW_j + min accW_j]. Zero for level 0. *)

val best_lag : t -> int -> Duration.t
(** Staleness just after an RP arrives: [upstream + holdW_j + propW_j].
    Zero for level 0. *)

val retention_span : t -> int -> Duration.t
(** [(retCnt_j - 1) * cyclePer_j]; zero for level 0. *)

val guaranteed_range : t -> int -> Age_range.t option
(** The range of RP ages {e guaranteed} present at level [j] (Figure 3):
    [[worst_lag ... best_lag + retention_span]]. [None] when retention is too
    shallow to guarantee anything (the interval is empty). Level 0 is
    [Some [0 ... 0]]: the current state. *)

val surviving_levels : t -> scope:Location.scope -> int list
(** Indices of levels whose RPs remain usable under the failure scope, in
    increasing order. Hardware destruction follows device locations; a
    [Data_object] failure destroys no hardware but makes level 0 (the
    current, corrupted copy) unusable as a recovery source. *)

val pp : t Fmt.t
