open Storage_units
open Storage_device
open Storage_protection

type level = {
  technique : Technique.t;
  device : Device.t;
  link : Interconnect.t option;
}

type t = { levels : level array }

let schedule_exn l =
  match Technique.schedule l.technique with
  | Some s -> s
  | None -> invalid_arg "Hierarchy: level without schedule"

let validate levels =
  match levels with
  | [] -> Error "hierarchy must have at least a primary level"
  | primary :: rest ->
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    (match primary.technique with
    | Technique.Primary_copy _ -> (
      let non_primary =
        List.exists
          (fun l ->
            match l.technique with
            | Technique.Primary_copy _ -> true
            | _ -> false)
          rest
      in
      if non_primary then err "only level 0 may be a primary copy"
      else begin
        let missing_schedule =
          List.exists (fun l -> Technique.schedule l.technique = None) rest
        in
        if missing_schedule then
          err "every level above 0 must have a schedule"
        else begin
          (* Conventions on consecutive secondary levels (§3.2.1). *)
          let rec check_pairs = function
            | a :: (b :: _ as tl) ->
              let sa = schedule_exn a and sb = schedule_exn b in
              if
                sb.Schedule.retention_count < sa.Schedule.retention_count
              then
                err "retention count must not decrease with level (%s -> %s)"
                  (Technique.name a.technique)
                  (Technique.name b.technique)
              else if
                Duration.compare
                  sb.Schedule.full.Schedule.accumulation
                  (Schedule.cycle_period sa)
                < 0
              then
                err
                  "accumulation window of %s is shorter than the cycle \
                   period of %s"
                  (Technique.name b.technique)
                  (Technique.name a.technique)
              else check_pairs tl
            | [] | [ _ ] -> Ok ()
          in
          let colocation_ok =
            List.for_all
              (fun l ->
                (not (Technique.colocated_with_primary l.technique))
                || String.equal l.device.Device.name
                     primary.device.Device.name)
              rest
          in
          if not colocation_ok then
            err
              "split mirrors and virtual snapshots must be hosted on the \
               primary device"
          else check_pairs rest
        end
      end)
    | _ -> err "level 0 must be a primary copy")

let make levels =
  match validate levels with
  | Ok () -> Ok { levels = Array.of_list levels }
  | Error _ as e -> e

let make_exn levels =
  match make levels with Ok t -> t | Error m -> invalid_arg ("Hierarchy: " ^ m)

let hold_retention_inversions t =
  let out = ref [] in
  let n = Array.length t.levels in
  for i = n - 2 downto 1 do
    let si = schedule_exn t.levels.(i) and sj = schedule_exn t.levels.(i + 1) in
    let hold_next = sj.Schedule.full.Schedule.hold in
    let ret_here = Schedule.retention_window si in
    if Duration.compare hold_next ret_here > 0 then out := (i + 1) :: !out
  done;
  !out

(* Compatibility shim over {!hold_retention_inversions}; the structured
   form (with stable codes and locations) lives in [Storage_lint]. *)
let warnings t =
  List.map
    (fun j ->
      Printf.sprintf
        "level %d (%s): hold window exceeds level %d retention window; \
         extra retention capacity is required at level %d"
        j
        (Technique.name t.levels.(j).technique)
        (j - 1) (j - 1))
    (hold_retention_inversions t)

let length t = Array.length t.levels

let level t i =
  if i < 0 || i >= Array.length t.levels then
    invalid_arg "Hierarchy.level: index out of range";
  t.levels.(i)

let levels t = Array.to_list t.levels
let primary t = t.levels.(0)

let upstream_lag t j =
  if j < 0 || j >= Array.length t.levels then
    invalid_arg "Hierarchy.upstream_lag: index out of range";
  let acc = ref Duration.zero in
  for i = 1 to j - 1 do
    let w = Schedule.onward_windows (schedule_exn t.levels.(i)) in
    acc :=
      Duration.sum [ !acc; w.Schedule.hold; w.Schedule.propagation ]
  done;
  !acc

let worst_lag t j =
  if j = 0 then Duration.zero
  else Schedule.worst_lag (schedule_exn t.levels.(j)) ~upstream:(upstream_lag t j)

let best_lag t j =
  if j = 0 then Duration.zero
  else Schedule.best_lag (schedule_exn t.levels.(j)) ~upstream:(upstream_lag t j)

let retention_span t j =
  if j = 0 then Duration.zero
  else Schedule.retention_span (schedule_exn t.levels.(j))

let guaranteed_range t j =
  if j = 0 then Some (Age_range.make ~newest_age:Duration.zero ~oldest_age:Duration.zero)
  else begin
    let newest = worst_lag t j in
    let oldest = Duration.add (best_lag t j) (retention_span t j) in
    if Duration.compare newest oldest > 0 then None
    else Some (Age_range.make ~newest_age:newest ~oldest_age:oldest)
  end

let surviving_levels t ~scope =
  let n = Array.length t.levels in
  let alive = ref [] in
  for j = n - 1 downto 0 do
    let l = t.levels.(j) in
    let destroyed =
      Location.destroys scope ~device_name:l.device.Device.name
        l.device.Device.location
    in
    let corrupt = Location.corrupts_object scope && j = 0 in
    if (not destroyed) && not corrupt then alive := j :: !alive
  done;
  !alive

let pp ppf t =
  let pp_level ppf (j, l) =
    Fmt.pf ppf "level %d: %a on %s%a" j Technique.pp l.technique
      l.device.Device.name
      (Fmt.option (fun ppf link ->
           Fmt.pf ppf " via %s" link.Interconnect.name))
      l.link
  in
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut pp_level)
    (List.mapi (fun j l -> (j, l)) (Array.to_list t.levels))
