open Storage_units
open Storage_device
open Storage_protection
open Storage_hierarchy
open Storage_model

let log_src =
  Logs.Src.create "storage.sim" ~doc:"storage dependability simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  warmup : Duration.t;
  log : bool;
  outage : (int * Duration.t) option;
  record_events : bool;
}

let default_config =
  { warmup = Duration.weeks 12.; log = false; outage = None;
    record_events = false }

type measured = {
  failure_time : Duration.t;
  source_level : int option;
  data_loss : Data_loss.loss;
  recovery_time : Duration.t option;
  rp_count : int array;
  rp_newest_age : Duration.t option array;
  rp_oldest_age : Duration.t option array;
  bandwidth_utilization : (string * float) list;
  timeline : (Duration.t * string) list;
}

type rp = { capture_time : float }
type kind = K_full | K_incr of int

type event =
  | Capture of { level : int; kind : kind }
  | Transfer_start of {
      level : int;
      capture : float;
      size : float;
      prop : float;
    }
  | Shipment_arrive of { level : int; capture : float }
  | Recovery_step of { rid : int }
      (* recovering data is ready at the head of the recovery's remaining
         path; plan the next hop *)
  | Recovery_xfer of { rid : int }
      (* the next hop's transfer may begin (source staged, receiver
         provisioned); add the flow *)

type level_state = {
  sched : Schedule.t option;
  store : rp list ref;  (* newest capture first *)
  keep : int;
}

type state = {
  design : Design.t;
  hierarchy : Hierarchy.t;
  levels : level_state array;
  queue : event Event_queue.t;
  net : Flow_net.t;
  nodes : (string, Flow_net.node) Hashtbl.t;  (* device/link name -> node *)
  mutable inflight : (Flow_net.flow * (int * float)) list;
  mutable now : float;
  verbose : bool;
  mutable outage_level : int option;
  mutable outage_start : float;
  reservations : (string * float) list;  (* device name -> reserved B/s *)
  mutable record : bool;
  mutable events : (float * string) list;  (* newest first *)
  (* Multi-failure execution state ([run_events] only; inert in [run]).
     [available_at] maps a destroyed device to the absolute time its spare
     is provisioned (infinity: no applicable spare); absent means the
     device was never destroyed. *)
  available_at : (string, float) Hashtbl.t;
  mutable capture_gate : int -> bool;
  mutable rec_inflight : (Flow_net.flow * int) list;
  mutable on_recovery : [ `Step of int | `Xfer of int | `Done of int ] -> unit;
}

let secs = Duration.to_seconds

(* Simulator throughput metrics (no-ops until stats are enabled): discrete
   events handled, flow-network advances, and whole runs. *)
let obs_runs = Storage_obs.Counter.make "sim.runs"
let obs_events = Storage_obs.Counter.make "sim.events"
let obs_flow_advances = Storage_obs.Counter.make "sim.flow_advances"
let t_sim_run = Storage_obs.Timer.make "sim.run"

let record st fmt =
  Printf.ksprintf
    (fun msg -> if st.record then st.events <- (st.now, msg) :: st.events)
    fmt

(* Techniques whose normal-mode bandwidth is a continuous background load
   (client I/O, resilvering, copy-on-write); their demands become static
   reservations, while backup / vaulting / mirroring propagation is modeled
   as explicit flows. *)
let reserved_technique name =
  List.mem name [ "foreground"; "split mirror"; "virtual snapshot" ]

let build_network design hierarchy =
  let net = Flow_net.create () in
  let nodes = Hashtbl.create 8 in
  let reservations = ref [] in
  List.iter
    (fun (d : Device.t) ->
      let bw = Rate.to_bytes_per_sec (Device.max_bandwidth d) in
      if bw > 0. then begin
        let node = Flow_net.add_node net ~name:d.Device.name ~capacity:bw in
        let reservation =
          Design.loaded_demands_on design d
          |> Demand.by_technique
          |> List.fold_left
               (fun acc (tech, demand) ->
                 if reserved_technique tech then
                   acc +. Rate.to_bytes_per_sec (Demand.total_bw demand)
                 else acc)
               0.
        in
        Flow_net.set_reservation net node reservation;
        reservations := (d.Device.name, reservation) :: !reservations;
        Hashtbl.replace nodes d.Device.name node
      end)
    (Design.devices design);
  List.iter
    (fun (l : Hierarchy.level) ->
      match l.Hierarchy.link with
      | Some link when not (Hashtbl.mem nodes link.Interconnect.name) -> (
        match Interconnect.bandwidth link with
        | Some bw ->
          let node =
            Flow_net.add_node net ~name:link.Interconnect.name
              ~capacity:(Rate.to_bytes_per_sec bw)
          in
          Hashtbl.replace nodes link.Interconnect.name node
        | None -> ())
      | Some _ | None -> ())
    (Hierarchy.levels hierarchy);
  (net, nodes, List.rev !reservations)

let store_rp st level capture =
  let ls = st.levels.(level) in
  let rec insert = function
    | [] -> [ { capture_time = capture } ]
    | hd :: _ as rest when hd.capture_time <= capture ->
      { capture_time = capture } :: rest
    | hd :: tl -> hd :: insert tl
  in
  let updated = insert !(ls.store) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | hd :: tl -> hd :: take (n - 1) tl
  in
  ls.store := take ls.keep updated;
  record st "level %d stores RP captured %.0f s ago" level (st.now -. capture);
  if st.verbose then
    Log.debug (fun m ->
        m "t=%.0f: level %d stores RP captured at %.0f" st.now level capture)

let newest st level =
  match !(st.levels.(level).store) with [] -> None | rp :: _ -> Some rp

(* Capture times within one cycle: the full at the end of its accumulation
   window, then each incremental at the end of its own. Scheduling the next
   cycle when the current full fires keeps the queue shallow. *)
let schedule_cycle st level ~cycle_start =
  match st.levels.(level).sched with
  | None -> ()
  | Some s ->
    let full_at = cycle_start +. secs s.Schedule.full.Schedule.accumulation in
    Event_queue.push st.queue ~time:full_at (Capture { level; kind = K_full });
    (match s.Schedule.secondary with
    | None -> ()
    | Some (_, w) ->
      for k = 1 to s.Schedule.cycle_count do
        let at = full_at +. (float_of_int k *. secs w.Schedule.accumulation) in
        Event_queue.push st.queue ~time:at
          (Capture { level; kind = K_incr k })
      done)

let kind_windows (s : Schedule.t) = function
  | K_full -> s.Schedule.full
  | K_incr _ -> (
    match s.Schedule.secondary with
    | Some (_, w) -> w
    | None -> s.Schedule.full)

(* Bytes actually moved when an RP propagates to [level]. Colocated PiT
   copies (split mirrors, snapshots) materialize instantaneously at the
   split — their background resilvering/copy-on-write load is already part
   of the device reservations. Mirrors send one batch of coalesced unique
   updates. Backup sends fulls or incrementals. *)
let rp_transfer_size design technique (s : Schedule.t) kind =
  match (technique : Technique.t) with
  | Technique.Primary_copy _ | Technique.Split_mirror _
  | Technique.Virtual_snapshot _ ->
    Size.zero
  | Technique.Remote_mirror { schedule; _ } ->
    Storage_workload.Workload.unique_bytes design.Design.workload
      schedule.Schedule.full.Schedule.accumulation
  | Technique.Erasure_coded { schedule; _ } as tech ->
    Size.scale
      (Technique.expansion_factor tech)
      (Storage_workload.Workload.unique_bytes design.Design.workload
         schedule.Schedule.full.Schedule.accumulation)
  | Technique.Backup _ | Technique.Vaulting _ -> (
    match kind with
    | K_full -> Demands.full_size design.Design.workload
    | K_incr k -> Demands.incremental_size design.Design.workload s ~index:k)

let in_outage st level =
  match st.outage_level with
  | Some l when l = level -> st.now >= st.outage_start
  | Some _ | None -> false

(* The flow-net nodes a transfer between two devices occupies: both
   endpoints (or one node twice for an intra-device copy), plus the link
   if it is bandwidth-constrained. *)
let hop_through st ~src_dev ~dst_dev ~link =
  let node name = Hashtbl.find_opt st.nodes name in
  let src = node src_dev and dst = node dst_dev in
  let link_node =
    match link with
    | Some (l : Interconnect.t) -> node l.Interconnect.name
    | None -> None
  in
  let through =
    match (src, dst) with
    | Some a, Some b when Flow_net.node_name a = Flow_net.node_name b ->
      [ (a, 2) ]
    | Some a, Some b -> [ (a, 1); (b, 1) ]
    | Some a, None -> [ (a, 1) ]
    | None, Some b -> [ (b, 1) ]
    | None, None -> []
  in
  match link_node with Some n -> (n, 1) :: through | None -> through

let handle_capture st ~level ~kind =
  let s = Option.get st.levels.(level).sched in
  (* Re-arm the next cycle when the full fires. *)
  (if kind = K_full then
     let cycle_start =
       st.now -. secs s.Schedule.full.Schedule.accumulation
     in
     schedule_cycle st level
       ~cycle_start:(cycle_start +. secs (Schedule.cycle_period s)));
  let capture =
    if level = 1 then Some st.now
    else
      match newest st (level - 1) with
      | Some rp -> Some rp.capture_time
      | None -> None
  in
  match capture with
  | None ->
    if st.verbose then
      Log.debug (fun m ->
          m "t=%.0f: level %d capture skipped (nothing upstream)" st.now level)
  | Some _ when in_outage st level || not (st.capture_gate level) ->
    if st.verbose then
      Log.debug (fun m ->
          m "t=%.0f: level %d capture suppressed (outage)" st.now level)
  | Some capture ->
    let w = kind_windows s kind in
    let technique = (Hierarchy.level st.hierarchy level).Hierarchy.technique in
    let size = Size.to_bytes (rp_transfer_size st.design technique s kind) in
    Event_queue.push st.queue
      ~time:(st.now +. secs w.Schedule.hold)
      (Transfer_start
         { level; capture; size; prop = secs w.Schedule.propagation })

let handle_transfer_start st ~level ~capture ~size ~prop =
  if in_outage st level || not (st.capture_gate level) then ignore capture
  else begin
    let l = Hierarchy.level st.hierarchy level in
  let upstream = Hierarchy.level st.hierarchy (level - 1) in
  match l.Hierarchy.link with
  | Some ({ Interconnect.transport = Interconnect.Shipment; _ } as link) ->
    Event_queue.push st.queue
      ~time:(st.now +. secs link.Interconnect.delay)
      (Shipment_arrive { level; capture })
  | link -> (
    let through =
      hop_through st ~src_dev:upstream.Hierarchy.device.Device.name
        ~dst_dev:l.Hierarchy.device.Device.name ~link
    in
    if size <= 0. || through = [] then store_rp st level capture
    else begin
      let rate_cap = if prop > 0. then size /. prop else infinity in
      let flow =
        Flow_net.add_flow st.net ~rate_cap
          ~label:(Printf.sprintf "rp->%d" level)
          ~through ~bytes:size ()
      in
      record st "level %d starts a %.0f MiB propagation" level
        (size /. (1024. *. 1024.));
      st.inflight <- (flow, (level, capture)) :: st.inflight
    end)
  end

let handle_event st = function
  | Capture { level; kind } -> handle_capture st ~level ~kind
  | Transfer_start { level; capture; size; prop } ->
    handle_transfer_start st ~level ~capture ~size ~prop
  | Shipment_arrive { level; capture } -> store_rp st level capture
  | Recovery_step { rid } -> st.on_recovery (`Step rid)
  | Recovery_xfer { rid } -> st.on_recovery (`Xfer rid)

let complete_flows st flows =
  List.iter
    (fun flow ->
      match List.assq_opt flow st.inflight with
      | Some (level, capture) ->
        st.inflight <- List.remove_assq flow st.inflight;
        store_rp st level capture
      | None -> (
        match List.assq_opt flow st.rec_inflight with
        | Some rid ->
          st.rec_inflight <- List.remove_assq flow st.rec_inflight;
          st.on_recovery (`Done rid)
        | None -> ()))
    flows

(* Advance the interleaved discrete events and flow completions up to
   [until]. *)
let run_until st until =
  let rec loop () =
    if st.now < until then begin
      let next_event = Event_queue.peek_time st.queue in
      let next_flow = Flow_net.next_completion st.net in
      let next_time =
        List.fold_left
          (fun acc t -> match t with Some x -> Float.min acc x | None -> acc)
          until
          [
            next_event;
            Option.map (fun (dt, _) -> st.now +. dt) next_flow;
          ]
      in
      let dt = Float.max 0. (next_time -. st.now) in
      (* A nearly-complete flow whose remaining time is below the ulp of
         the clock (multi-year virtual times have ulps of tens of
         nanoseconds) yields [next_time = st.now]: advancing by the
         rounded dt would move zero bytes and the loop would never
         progress. Advance the net by the flow's own sub-resolution dt
         instead — virtual time itself cannot (and need not) move. *)
      let dt =
        match next_flow with
        | Some (fdt, _) when dt = 0. && st.now +. fdt = st.now -> fdt
        | Some _ | None -> dt
      in
      let completed = Flow_net.advance st.net dt in
      Storage_obs.Counter.incr obs_flow_advances;
      st.now <- next_time;
      complete_flows st completed;
      List.iter
        (fun (_, ev) ->
          Storage_obs.Counter.incr obs_events;
          handle_event st ev)
        (Event_queue.drain_until st.queue st.now);
      loop ()
    end
  in
  loop ()

let build design =
  let hierarchy = design.Design.hierarchy in
  let n = Hierarchy.length hierarchy in
  let net, nodes, reservations = build_network design hierarchy in
  let levels =
    Array.init n (fun j ->
        let sched =
          Technique.schedule (Hierarchy.level hierarchy j).Hierarchy.technique
        in
        let keep =
          match sched with
          | None -> 1
          | Some s ->
            s.Schedule.retention_count * (1 + s.Schedule.cycle_count)
        in
        { sched; store = ref []; keep })
  in
  let st =
    {
      design;
      hierarchy;
      levels;
      queue = Event_queue.create ();
      net;
      nodes;
      inflight = [];
      now = 0.;
      verbose = false;
      outage_level = None;
      outage_start = infinity;
      reservations;
      record = false;
      events = [];
      available_at = Hashtbl.create 4;
      capture_gate = (fun _ -> true);
      rec_inflight = [];
      on_recovery = ignore;
    }
  in
  (* Align each level's cycle so that its captures land just after the
     upstream level's arrivals (the way operators schedule backup windows
     after the split and vault pickups after the backup). Without this,
     phase misalignment adds up to one upstream accumulation window of
     extra staleness per level — real, and exposed by sweep_failure_phase,
     but not what the paper's composed worst case describes. *)
  for j = 1 to n - 1 do
    let phase =
      if j = 1 then 0.
      else secs (Hierarchy.best_lag hierarchy (j - 1)) +. (60. *. float_of_int (j - 1))
    in
    schedule_cycle st j ~cycle_start:phase
  done;
  st

(* --- failure handling and executed recovery --- *)

let destroyed_devices st scope =
  List.filter
    (fun (d : Device.t) ->
      Location.destroys scope ~device_name:d.Device.name d.Device.location)
    (Design.devices st.design)

let apply_failure st scope =
  let destroyed = destroyed_devices st scope in
  let is_dead name =
    List.exists (fun (d : Device.t) -> String.equal d.Device.name name) destroyed
  in
  (* Record when each destroyed device's spare comes online (read only by
     the multi-failure executor; [run] never consults it). *)
  List.iter
    (fun (d : Device.t) ->
      let avail =
        match Spare.provisioning_time (Device.spare_for d ~scope) with
        | Some p -> st.now +. secs p
        | None -> infinity
      in
      Hashtbl.replace st.available_at d.Device.name avail)
    destroyed;
  (* RPs stored on destroyed devices are gone, and in-flight transfers to or
     from them abort. *)
  Array.iteri
    (fun j ls ->
      let dev = (Hierarchy.level st.hierarchy j).Hierarchy.device in
      if is_dead dev.Device.name then ls.store := [])
    st.levels;
  List.iter
    (fun (flow, (level, _)) ->
      let l = Hierarchy.level st.hierarchy level in
      let upstream_dev =
        (Hierarchy.level st.hierarchy (level - 1)).Hierarchy.device
      in
      if is_dead l.Hierarchy.device.Device.name
         || is_dead upstream_dev.Device.name
      then begin
        Flow_net.cancel st.net flow;
        st.inflight <- List.remove_assq flow st.inflight
      end)
    st.inflight

let choose_source_at st ~scope ~target ~target_now =
  let survivors = Hierarchy.surviving_levels st.hierarchy ~scope in
  let primary_intact = List.mem 0 survivors in
  if primary_intact && target_now then `No_recovery_needed
  else begin
    let candidates =
      List.filter_map
        (fun j ->
          if j = 0 then None
          else
            (* The newest RP not newer than the target. *)
            List.find_opt (fun rp -> rp.capture_time <= target)
              !(st.levels.(j).store)
            |> Option.map (fun rp -> (j, target -. rp.capture_time)))
        survivors
    in
    match candidates with
    | [] -> `Total_loss
    | (j0, l0) :: rest ->
      let j, loss =
        List.fold_left
          (fun (bj, bl) (j, l) -> if l < bl then (j, l) else (bj, bl))
          (j0, l0) rest
      in
      `Recover_from (j, loss)
  end

let choose_source st scenario =
  choose_source_at st ~scope:scenario.Scenario.scope
    ~target:(st.now -. secs scenario.Scenario.target_age)
    ~target_now:(Duration.is_zero scenario.Scenario.target_age)

(* Strict recovery execution: a hop's transfer starts only after the data
   has arrived at the source side AND the receiving device is provisioned
   (the analytical model lets provisioning overlap the transfer; see
   Recovery_time). *)
let execute_recovery st scenario ~source =
  let scope = scenario.Scenario.scope in
  let recovery_size =
    match scenario.Scenario.object_size with
    | Some s -> s
    | None ->
      Demands.recovery_size ~workload:st.design.Design.workload
        (Hierarchy.level st.hierarchy source).Hierarchy.technique
  in
  let provisioned_at (d : Device.t) =
    if Location.destroys scope ~device_name:d.Device.name d.Device.location
    then
      match Spare.provisioning_time (Device.spare_for d ~scope) with
      | Some p -> Some (st.now +. secs p)
      | None -> None
    else Some st.now
  in
  let path = Recovery_time.recovery_path st.hierarchy ~source in
  let rec hops rt = function
    | a :: (b :: _ as rest) -> (
      let la = Hierarchy.level st.hierarchy a
      and lb = Hierarchy.level st.hierarchy b in
      match provisioned_at lb.Hierarchy.device with
      | None -> None
      | Some prov -> (
        let link = la.Hierarchy.link in
        let transit =
          match link with
          | Some l -> secs l.Interconnect.delay
          | None -> 0.
        in
        let is_shipment =
          match link with
          | Some { Interconnect.transport = Interconnect.Shipment; _ } -> true
          | Some _ | None -> false
        in
        let arrival = rt +. transit in
        let start = Float.max arrival prov in
        if is_shipment then hops start rest
        else begin
          let through =
            hop_through st ~src_dev:la.Hierarchy.device.Device.name
              ~dst_dev:lb.Hierarchy.device.Device.name ~link
          in
          let ser_fix = secs la.Hierarchy.device.Device.access_delay in
          let begin_xfer = start +. ser_fix in
          if through = [] || Size.is_zero recovery_size then
            hops begin_xfer rest
          else begin
            let flow =
              Flow_net.add_flow st.net ~label:"recovery" ~through
                ~bytes:(Size.to_bytes recovery_size)
                ()
            in
            let xfer =
              match Flow_net.next_completion st.net with
              | Some (dt, f) when f == flow -> dt
              | _ ->
                (* Another flow finishes first; with propagation flows
                   cancelled or reserved this is the recovery flow's own
                   completion in practice, but fall back to its rate. *)
                let r = Flow_net.rate st.net flow in
                if r > 0. then Flow_net.remaining st.net flow /. r else nan
            in
            Flow_net.cancel st.net flow;
            if Float.is_nan xfer then None else hops (begin_xfer +. xfer) rest
          end
        end))
    | [ _ ] | [] -> Some rt
  in
  hops st.now path

let measure_rp_stats st =
  let n = Array.length st.levels in
  let count = Array.make n 0 in
  let newest_age = Array.make n None in
  let oldest_age = Array.make n None in
  Array.iteri
    (fun j ls ->
      let rps = !(ls.store) in
      count.(j) <- List.length rps;
      (match rps with
      | head :: _ ->
        newest_age.(j) <-
          Some (Duration.seconds (Float.max 0. (st.now -. head.capture_time)))
      | [] -> ());
      match List.rev rps with
      | last :: _ ->
        oldest_age.(j) <-
          Some (Duration.seconds (Float.max 0. (st.now -. last.capture_time)))
      | [] -> ())
    st.levels;
  (count, newest_age, oldest_age)

let measure_utilization st =
  let elapsed = st.now in
  if elapsed <= 0. then []
  else
    Hashtbl.fold
      (fun name node acc ->
        match List.assoc_opt name st.reservations with
        | None -> acc (* link node *)
        | Some reserved ->
          let device =
            List.find
              (fun (d : Device.t) -> String.equal d.Device.name name)
              (Design.devices st.design)
          in
          let capacity = Rate.to_bytes_per_sec (Device.max_bandwidth device) in
          let used =
            (reserved *. elapsed) +. Flow_net.node_bytes st.net node
          in
          (name, used /. (capacity *. elapsed)) :: acc)
      st.nodes []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run ?(config = default_config) design scenario =
  Storage_obs.Counter.incr obs_runs;
  Storage_obs.Timer.time t_sim_run @@ fun () ->
  let st =
    { (build design) with verbose = config.log; record = config.record_events }
  in
  (match config.outage with
  | Some (level, duration) ->
    if level <= 0 || level >= Hierarchy.length st.hierarchy then
      invalid_arg "Sim.run: outage level out of range";
    st.outage_level <- Some level;
    st.outage_start <-
      Float.max 0. (secs config.warmup -. secs duration)
  | None -> ());
  run_until st (secs config.warmup);
  st.now <- secs config.warmup;
  let bandwidth_utilization = measure_utilization st in
  let rp_count, rp_newest_age, rp_oldest_age = measure_rp_stats st in
  let failure_time = Duration.seconds st.now in
  record st "FAILURE: %s" (Location.scope_name scenario.Scenario.scope);
  apply_failure st scenario.Scenario.scope;
  let source_level, data_loss, recovery_time =
    match choose_source st scenario with
    | `No_recovery_needed ->
      (Some 0, Data_loss.Updates Duration.zero, Some Duration.zero)
    | `Total_loss -> (None, Data_loss.Entire_object, None)
    | `Recover_from (j, loss) -> (
      record st "recovery source: level %d (loss %.0f s)" j loss;
      let loss = Data_loss.Updates (Duration.seconds loss) in
      match execute_recovery st scenario ~source:j with
      | Some finish ->
        record st "recovery complete %.0f s after the failure"
          (finish -. st.now);
        (Some j, loss, Some (Duration.seconds (finish -. st.now)))
      | None -> (Some j, loss, None))
  in
  {
    failure_time;
    source_level;
    data_loss;
    recovery_time;
    rp_count;
    rp_newest_age;
    rp_oldest_age;
    bandwidth_utilization;
    timeline =
      List.rev_map (fun (t, m) -> (Duration.seconds t, m)) st.events;
  }

(* --- multi-failure execution -------------------------------------- *)

type injected = {
  event : Scenario.event;
  injected_at : Duration.t;
  source_level : int option;
  data_loss : Data_loss.loss;
  recovery_end : Duration.t option;
  replans : int;
}

type multi = {
  injected : injected list;
  horizon : Duration.t;
  bandwidth_utilization : (string * float) list;
  timeline : (Duration.t * string) list;
}

let obs_multi_runs = Storage_obs.Counter.make "sim.multi_runs"
let obs_replans = Storage_obs.Counter.make "sim.recovery_replans"
let t_sim_run_events = Storage_obs.Timer.make "sim.run_events"

(* Per-failure bookkeeping that survives replanning: the [slot] is the
   stable record for one injected event; [recovery] records are the
   (possibly re-planned) executions attached to it. A slot absorbed by a
   later primary-destroying failure resolves its recovery end through the
   absorbing slot. *)
type slot = {
  s_event : Scenario.event;
  s_at : float;  (* absolute injection time *)
  s_primary_down : bool;
  mutable s_source_level : int option;
  mutable s_loss : Data_loss.loss;
  mutable s_end : float option;
  mutable s_replans : int;
  mutable s_absorbed_into : slot option;
}

type recovery = {
  rid : int;
  slot : slot;
  size : Size.t;
  mutable path : int list;  (* remaining levels; data is staged at the head *)
  mutable flow : Flow_net.flow option;
  mutable dead : bool;  (* finished, failed, replanned or absorbed *)
}

(* Executes a scenario's full event set in virtual time: each failure is
   injected at its offset past the warmup, and its recovery runs as real
   flows in the event loop — contending with RP propagation and with the
   other recoveries, re-planned (or absorbed by a newer primary failure)
   when a later event destroys a device it depends on. Recoveries still
   unfinished when the horizon closes report no recovery end.

   Unlike [run], whose recovery is priced synchronously at frozen
   post-failure rates, this executor lets virtual time advance, so a
   single-event scenario measures a (generally different) live-bandwidth
   recovery time; the degenerate reduction to [run] is the caller's
   choice (see Storage_fleet). *)
let run_events ?(config = default_config) ?horizon design scenario =
  Storage_obs.Counter.incr obs_multi_runs;
  Storage_obs.Timer.time t_sim_run_events @@ fun () ->
  let events = Scenario.events scenario in
  let last_at =
    List.fold_left
      (fun acc (e : Scenario.event) -> Float.max acc (secs e.Scenario.at))
      0. events
  in
  let horizon =
    match horizon with
    | Some h -> secs h
    | None -> last_at +. secs (Duration.weeks 12.)
  in
  if horizon < last_at then
    invalid_arg "Sim.run_events: horizon before the last failure event";
  let st =
    { (build design) with verbose = config.log; record = config.record_events }
  in
  (match config.outage with
  | Some (level, duration) ->
    if level <= 0 || level >= Hierarchy.length st.hierarchy then
      invalid_arg "Sim.run_events: outage level out of range";
    st.outage_level <- Some level;
    st.outage_start <- Float.max 0. (secs config.warmup -. secs duration)
  | None -> ());
  let warmup = secs config.warmup in
  let primary_dev =
    (Hierarchy.level st.hierarchy 0).Hierarchy.device.Device.name
  in
  let device_of j =
    (Hierarchy.level st.hierarchy j).Hierarchy.device.Device.name
  in
  let device_ready name =
    match Hashtbl.find_opt st.available_at name with
    | Some t -> st.now >= t
    | None -> true
  in
  (* Outstanding conditions invalidating the primary's data: one per
     un-recovered primary-destroying failure. While non-zero, level-1
     captures (and their propagations) have nothing real to capture. *)
  let primary_invalid = ref 0 in
  st.capture_gate <-
    (fun level ->
      let upstream_ok =
        if level = 1 then device_ready primary_dev && !primary_invalid = 0
        else device_ready (device_of (level - 1))
      in
      upstream_ok && device_ready (device_of level));
  let recoveries : (int, recovery) Hashtbl.t = Hashtbl.create 8 in
  let next_rid = ref 0 in
  let finish_recovery r =
    r.dead <- true;
    r.slot.s_end <- Some st.now;
    if r.slot.s_primary_down then decr primary_invalid;
    record st "recovery %d complete %.0f s after its failure" r.rid
      (st.now -. r.slot.s_at)
  in
  let fail_recovery r =
    r.dead <- true;
    record st "recovery %d cannot proceed (no provisionable device)" r.rid
  in
  (* Plan the next hop for [r], whose data is staged at the head of its
     remaining path at the current instant. *)
  let step r =
    match r.path with
    | a :: b :: _ ->
      let la = Hierarchy.level st.hierarchy a
      and lb = Hierarchy.level st.hierarchy b in
      let prov =
        match Hashtbl.find_opt st.available_at lb.Hierarchy.device.Device.name
        with
        | Some t -> t
        | None -> st.now
      in
      if prov = infinity then fail_recovery r
      else begin
        let link = la.Hierarchy.link in
        let transit =
          match link with
          | Some l -> secs l.Interconnect.delay
          | None -> 0.
        in
        let is_shipment =
          match link with
          | Some { Interconnect.transport = Interconnect.Shipment; _ } -> true
          | Some _ | None -> false
        in
        let arrival = st.now +. transit in
        let start = Float.max arrival prov in
        if is_shipment then begin
          r.path <- List.tl r.path;
          Event_queue.push st.queue ~time:start (Recovery_step { rid = r.rid })
        end
        else begin
          let through =
            hop_through st ~src_dev:la.Hierarchy.device.Device.name
              ~dst_dev:lb.Hierarchy.device.Device.name ~link
          in
          let ser_fix = secs la.Hierarchy.device.Device.access_delay in
          let begin_xfer = start +. ser_fix in
          if through = [] || Size.is_zero r.size then begin
            r.path <- List.tl r.path;
            Event_queue.push st.queue ~time:begin_xfer
              (Recovery_step { rid = r.rid })
          end
          else
            Event_queue.push st.queue ~time:begin_xfer
              (Recovery_xfer { rid = r.rid })
        end
      end
    | [ _ ] | [] -> finish_recovery r
  in
  let start_xfer r =
    match r.path with
    | a :: b :: _ ->
      let la = Hierarchy.level st.hierarchy a
      and lb = Hierarchy.level st.hierarchy b in
      let through =
        hop_through st ~src_dev:la.Hierarchy.device.Device.name
          ~dst_dev:lb.Hierarchy.device.Device.name ~link:la.Hierarchy.link
      in
      if through = [] then begin
        r.path <- List.tl r.path;
        step r
      end
      else begin
        let flow =
          Flow_net.add_flow st.net
            ~label:(Printf.sprintf "recovery-%d" r.rid)
            ~through ~bytes:(Size.to_bytes r.size) ()
        in
        r.flow <- Some flow;
        st.rec_inflight <- (flow, r.rid) :: st.rec_inflight
      end
    | [ _ ] | [] -> finish_recovery r
  in
  st.on_recovery <-
    (fun signal ->
      let with_rec rid f =
        match Hashtbl.find_opt recoveries rid with
        | Some r when not r.dead -> f r
        | Some _ | None -> ()
      in
      match signal with
      | `Step rid -> with_rec rid step
      | `Xfer rid -> with_rec rid start_xfer
      | `Done rid ->
        with_rec rid (fun r ->
            r.flow <- None;
            r.path <- List.tl r.path;
            step r));
  let spawn_recovery slot ~source =
    let size =
      match slot.s_event.Scenario.object_size with
      | Some s -> s
      | None ->
        Demands.recovery_size ~workload:st.design.Design.workload
          (Hierarchy.level st.hierarchy source).Hierarchy.technique
    in
    incr next_rid;
    let r =
      {
        rid = !next_rid;
        slot;
        size;
        path = Recovery_time.recovery_path st.hierarchy ~source;
        flow = None;
        dead = false;
      }
    in
    Hashtbl.replace recoveries r.rid r;
    step r;
    r
  in
  let cancel_recovery_flow r =
    match r.flow with
    | Some flow ->
      Flow_net.cancel st.net flow;
      st.rec_inflight <- List.remove_assq flow st.rec_inflight;
      r.flow <- None
    | None -> ()
  in
  let choose slot ~target_now =
    choose_source_at st ~scope:slot.s_event.Scenario.scope
      ~target:(slot.s_at -. secs slot.s_event.Scenario.target_age)
      ~target_now
  in
  let replan r =
    cancel_recovery_flow r;
    r.dead <- true;
    let slot = r.slot in
    slot.s_replans <- slot.s_replans + 1;
    Storage_obs.Counter.incr obs_replans;
    record st "recovery %d re-planned by a later failure" r.rid;
    match choose slot ~target_now:false with
    | `No_recovery_needed | `Total_loss ->
      slot.s_source_level <- None;
      slot.s_loss <- Data_loss.Entire_object
    | `Recover_from (j, loss) ->
      slot.s_source_level <- Some j;
      slot.s_loss <- Data_loss.Updates (Duration.seconds loss);
      ignore (spawn_recovery slot ~source:j)
  in
  let absorb r ~into =
    cancel_recovery_flow r;
    r.dead <- true;
    if r.slot.s_primary_down then decr primary_invalid;
    r.slot.s_absorbed_into <- Some into
  in
  (* Warm up, then inject each event at its offset, re-planning the
     recoveries the new failure invalidates. *)
  run_until st warmup;
  st.now <- warmup;
  let slots =
    List.map
      (fun (ev : Scenario.event) ->
        let t_fail = warmup +. secs ev.Scenario.at in
        run_until st t_fail;
        st.now <- Float.max st.now t_fail;
        record st "FAILURE: %s" (Location.scope_name ev.Scenario.scope);
        let destroyed = destroyed_devices st ev.Scenario.scope in
        let primary_down =
          List.exists
            (fun (d : Device.t) -> String.equal d.Device.name primary_dev)
            destroyed
        in
        apply_failure st ev.Scenario.scope;
        if primary_down then incr primary_invalid;
        let slot =
          {
            s_event = ev;
            s_at = t_fail;
            s_primary_down = primary_down;
            s_source_level = None;
            s_loss = Data_loss.Entire_object;
            s_end = None;
            s_replans = 0;
            s_absorbed_into = None;
          }
        in
        let is_dead name =
          List.exists
            (fun (d : Device.t) -> String.equal d.Device.name name)
            destroyed
        in
        let live =
          Hashtbl.fold
            (fun _ r acc -> if r.dead then acc else r :: acc)
            recoveries []
          |> List.sort (fun a b -> compare a.rid b.rid)
        in
        List.iter
          (fun r ->
            if primary_down then absorb r ~into:slot
            else if List.exists (fun j -> is_dead (device_of j)) r.path then
              replan r)
          live;
        (match
           choose slot
             ~target_now:(Duration.is_zero ev.Scenario.target_age)
         with
        | `No_recovery_needed ->
          slot.s_source_level <- Some 0;
          slot.s_loss <- Data_loss.Updates Duration.zero;
          slot.s_end <- Some t_fail
        | `Total_loss ->
          slot.s_source_level <- None;
          slot.s_loss <- Data_loss.Entire_object
        | `Recover_from (j, loss) ->
          record st "recovery source: level %d (loss %.0f s)" j loss;
          slot.s_source_level <- Some j;
          slot.s_loss <- Data_loss.Updates (Duration.seconds loss);
          ignore (spawn_recovery slot ~source:j));
        slot)
      events
  in
  run_until st (warmup +. horizon);
  (* An absorbed slot's outage ends when the absorbing slot's recovery
     does (chains always point at later events, so this terminates). *)
  let rec resolved_end slot =
    match slot.s_absorbed_into with
    | Some into -> resolved_end into
    | None -> slot.s_end
  in
  {
    injected =
      List.map
        (fun slot ->
          {
            event = slot.s_event;
            injected_at = Duration.seconds slot.s_at;
            source_level = slot.s_source_level;
            data_loss = slot.s_loss;
            recovery_end =
              Option.map Duration.seconds (resolved_end slot);
            replans = slot.s_replans;
          })
        slots;
    horizon = Duration.seconds horizon;
    bandwidth_utilization = measure_utilization st;
    timeline = List.rev_map (fun (t, m) -> (Duration.seconds t, m)) st.events;
  }

(* Each offset is an independent simulation over its own state, so the
   sweep parallelizes trivially; results stay in offset order. *)
let offset_run ~config design scenario offset =
  let config = { config with warmup = Duration.add config.warmup offset } in
  run ~config design scenario

let sweep_failure_phase ?engine ?(config = default_config) design scenario
    ~offsets =
  match engine with
  | None -> List.map (offset_run ~config design scenario) offsets
  | Some e ->
    Storage_engine.map e (offset_run ~config design scenario) offsets
