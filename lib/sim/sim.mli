open Storage_units
open Storage_model

(** Discrete-event simulation of a storage system design.

    The simulator executes the design's retrieval-point policies in virtual
    time: PiT captures, holds, bandwidth-limited propagations through the
    {!Flow_net} (where concurrent transfers contend for enclosure and link
    bandwidth), retention-driven eviction, failure injection, and an
    executed recovery along the same path the analytical model uses.

    Where the analytical model computes closed-form worst cases, the
    simulator measures one concrete execution, so it both validates the
    formulas (measured values must fall inside the predicted bounds) and
    explores behaviours the formulas average away (contention, phase
    effects of the failure instant).

    Two deliberate semantic differences from the analytical model:
    - the failure lands at a specific phase of the RP cycles (set by the
      warmup length), so measured data loss ranges between the best and
      worst analytical lags rather than pinning the worst case;
    - recovery is executed {e strictly} (a transfer cannot start before the
      receiving device is provisioned), so measured recovery time is an
      upper bound on the model's parallel-provisioning estimate. *)

type config = {
  warmup : Duration.t;
      (** normal operation before the failure is injected; must exceed the
          recovery source's worst lag for an RP to be present *)
  log : bool;  (** emit per-event debug logging via [Logs] *)
  outage : (int * Duration.t) option;
      (** [(level, duration)]: suppress the technique at [level] (no new
          captures or propagations) for the last [duration] of the warmup,
          simulating a protection-technique outage that the failure then
          strikes during (validates the {!Storage_model.Degraded} model) *)
  record_events : bool;
      (** collect a human-readable event timeline in the result (RP
          arrivals, propagation starts, the failure, recovery milestones) *)
}

val default_config : config
(** 12 weeks of warmup, no logging, no outage, no event recording. *)

type measured = {
  failure_time : Duration.t;
  source_level : int option;
  data_loss : Data_loss.loss;
      (** measured: failure time minus the capture time of the restored RP *)
  recovery_time : Duration.t option;
      (** [None] when no recovery is needed (primary intact, target now) or
          none is possible *)
  rp_count : int array;  (** RPs retained per level at the failure instant *)
  rp_newest_age : Duration.t option array;
      (** age of each level's newest RP at the failure instant *)
  rp_oldest_age : Duration.t option array;
  bandwidth_utilization : (string * float) list;
      (** measured normal-mode bandwidth utilization per device over the
          warmup (reservations plus actual transfer volume divided by
          capacity x time) — the executed counterpart of Table 5's
          bandwidth column *)
  timeline : (Duration.t * string) list;
      (** chronological event log (empty unless [record_events]) *)
}

val run : ?config:config -> Design.t -> Scenario.t -> measured
(** Simulates [warmup] of normal operation, injects the scenario's failure,
    and executes the recovery. *)

type injected = {
  event : Scenario.event;
  injected_at : Duration.t;  (** absolute virtual time of the failure *)
  source_level : int option;
      (** the recovery source finally used ([Some 0]: no recovery needed;
          [None]: total loss) *)
  data_loss : Data_loss.loss;
  recovery_end : Duration.t option;
      (** absolute virtual time the recovery finished; [None] when the
          data was unrecoverable or the recovery was still running when
          the horizon closed *)
  replans : int;
      (** times a later failure forced this recovery to restart from a
          freshly chosen source *)
}

type multi = {
  injected : injected list;  (** one per scenario event, in event order *)
  horizon : Duration.t;  (** observed period after the warmup *)
  bandwidth_utilization : (string * float) list;
  timeline : (Duration.t * string) list;
}

val run_events :
  ?config:config -> ?horizon:Duration.t -> Design.t -> Scenario.t -> multi
(** Executes the scenario's full event set: after the warmup, each failure
    is injected at its [at] offset and its recovery runs as real flows in
    the event loop — overlapping recoveries contend with each other and
    with RP propagation through the same {!Flow_net}. A later failure that
    destroys a device an in-progress recovery depends on forces a re-plan
    from a freshly chosen source; one that destroys the primary absorbs
    the outage (the older event's unavailability ends when the newer
    recovery does). Simulation stops at [warmup + horizon] (default: the
    last event offset plus 12 weeks); recoveries still running then
    report no [recovery_end].

    Unlike {!run}, which prices its single recovery at frozen
    post-failure bandwidth, this executor lets virtual time advance
    during recovery, so even a single-event scenario measures a
    live-bandwidth recovery; the exact reduction to {!run} for
    single-failure inputs is made by the caller (see [Storage_fleet]). *)

val sweep_failure_phase :
  ?engine:Storage_engine.t -> ?config:config -> Design.t -> Scenario.t ->
  offsets:Duration.t list -> measured list
(** Re-runs {!run} with the failure instant shifted by each offset beyond
    the warmup, exposing the phase-dependence of data loss (the analytical
    model's worst case should dominate every measured sample). The
    [?engine] runs the independent simulations on its domains; results
    are in offset order and identical to a serial (engine-less) sweep's. *)
