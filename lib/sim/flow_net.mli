(** Bandwidth-shared transfer network.

    Models the devices of a storage design as capacity-constrained nodes and
    in-progress RP propagations / recovery transfers as flows between them.
    Active flows share node capacity by progressive filling (max-min
    fairness), with optional per-flow rate caps (a policy that spreads a
    backup over its propagation window caps the flow at size/propW) and a
    multiplicity per node (an intra-array copy consumes both a read and a
    write share of the same enclosure).

    The simulator drives it: add/remove flows on events, ask when the next
    flow finishes, and advance virtual time to transfer bytes at the
    current rates. Rates are recomputed lazily whenever the flow set or a
    background reservation changes. *)

type t
type node
type flow

val create : unit -> t

val add_node : t -> name:string -> capacity:float -> node
(** [capacity] in bytes/sec; [infinity] for unconstrained hops. Raises
    [Invalid_argument] on a non-positive capacity or duplicate name. *)

val set_reservation : t -> node -> float -> unit
(** Background bandwidth (e.g. foreground client I/O) subtracted from the
    node's capacity before flows share it. Clamped to the capacity. *)

val node_name : node -> string

val add_flow :
  t ->
  ?rate_cap:float ->
  ?label:string ->
  through:(node * int) list ->
  bytes:float ->
  unit ->
  flow
(** A flow pushing [bytes] through each [(node, multiplicity)] it touches.
    Raises [Invalid_argument] on non-positive bytes, an empty node list or
    a non-positive multiplicity. *)

val cancel : t -> flow -> unit
(** Removes the flow without completing it (device destroyed mid-transfer).
    Idempotent. *)

val label : flow -> string
val remaining : t -> flow -> float
val rate : t -> flow -> float
(** Current allocated rate (bytes/sec); 0 for finished/cancelled flows. *)

val active_count : t -> int

val active_flows : t -> flow list
(** The currently active flows (diagnostics). *)

val node_bytes : t -> node -> float
(** Cumulative bytes pushed through the node by flows (each flow counted
    with its multiplicity), since creation. Reservations are not
    included — the caller knows the reservation rate and the elapsed
    time. *)

val next_completion : t -> (float * flow) option
(** Time-to-finish of the earliest-finishing active flow at current rates.
    [None] when no flow is active, or all active flows have zero rate. *)

val advance : t -> float -> flow list
(** [advance t dt] progresses every active flow by [dt] at its current rate
    and returns the flows that completed (remaining hit zero), in
    completion order. [dt] must be non-negative. *)
