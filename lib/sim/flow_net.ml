type node = {
  id : int;
  name : string;
  capacity : float;
  mutable reservation : float;
  mutable transferred : float;
}

type state = Active | Done | Cancelled

type flow = {
  fid : int;
  flabel : string;
  through : (node * int) list;
  rate_cap : float;
  mutable remaining : float;
  mutable current_rate : float;
  mutable state : state;
}

type t = {
  mutable nodes : node list;
  mutable flows : flow list;
  mutable next_node : int;
  mutable next_flow : int;
  mutable dirty : bool;
}

let create () =
  { nodes = []; flows = []; next_node = 0; next_flow = 0; dirty = false }

let add_node t ~name ~capacity =
  if capacity <= 0. then invalid_arg "Flow_net.add_node: non-positive capacity";
  if List.exists (fun n -> String.equal n.name name) t.nodes then
    invalid_arg "Flow_net.add_node: duplicate node name";
  let node =
    { id = t.next_node; name; capacity; reservation = 0.; transferred = 0. }
  in
  t.next_node <- t.next_node + 1;
  t.nodes <- node :: t.nodes;
  node

let set_reservation t node r =
  if r < 0. then invalid_arg "Flow_net.set_reservation: negative reservation";
  node.reservation <- Float.min r node.capacity;
  t.dirty <- true

let node_name n = n.name

let add_flow t ?(rate_cap = infinity) ?(label = "") ~through ~bytes () =
  if bytes <= 0. then invalid_arg "Flow_net.add_flow: non-positive bytes";
  if through = [] then invalid_arg "Flow_net.add_flow: empty node list";
  List.iter
    (fun (_, m) ->
      if m <= 0 then invalid_arg "Flow_net.add_flow: non-positive multiplicity")
    through;
  let flow =
    {
      fid = t.next_flow;
      flabel = label;
      through;
      rate_cap;
      remaining = bytes;
      current_rate = 0.;
      state = Active;
    }
  in
  t.next_flow <- t.next_flow + 1;
  t.flows <- flow :: t.flows;
  t.dirty <- true;
  flow

let cancel t flow =
  if flow.state = Active then begin
    flow.state <- Cancelled;
    flow.current_rate <- 0.;
    t.dirty <- true
  end

let label f = f.flabel
let remaining _ f = f.remaining

let active t = List.filter (fun f -> f.state = Active) t.flows

(* Progressive filling (max-min fairness): raise all unfrozen flow rates
   uniformly until a node saturates or a flow hits its cap; freeze and
   repeat. *)
let recompute t =
  let flows = active t in
  t.flows <- List.filter (fun f -> f.state = Active) t.flows;
  List.iter (fun f -> f.current_rate <- 0.) flows;
  let avail = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Float.is_finite n.capacity then
        Hashtbl.replace avail n.id (Float.max 0. (n.capacity -. n.reservation)))
    t.nodes;
  let frozen = Hashtbl.create 16 in
  let unfrozen () = List.filter (fun f -> not (Hashtbl.mem frozen f.fid)) flows in
  let eps = 1e-9 in
  let rec fill () =
    let live = unfrozen () in
    if live <> [] then begin
      (* Load per constrained node from unfrozen flows. *)
      let load = Hashtbl.create 16 in
      List.iter
        (fun f ->
          List.iter
            (fun (n, m) ->
              if Hashtbl.mem avail n.id then begin
                let cur = Option.value ~default:0. (Hashtbl.find_opt load n.id) in
                Hashtbl.replace load n.id (cur +. float_of_int m)
              end)
            f.through)
        live;
      let delta_node =
        Hashtbl.fold
          (fun nid l acc ->
            if l > 0. then Float.min acc (Hashtbl.find avail nid /. l) else acc)
          load infinity
      in
      let delta_cap =
        List.fold_left
          (fun acc f -> Float.min acc (f.rate_cap -. f.current_rate))
          infinity live
      in
      let delta = Float.max 0. (Float.min delta_node delta_cap) in
      (* A flow constrained by nothing (infinite nodes, no cap) would get an
         infinite rate; clamp to a huge finite rate so arithmetic stays
         well-defined (it still completes effectively instantly). *)
      let delta = if Float.is_finite delta then delta else 1e18 in
      List.iter
        (fun f ->
          f.current_rate <- f.current_rate +. delta;
          List.iter
            (fun (n, m) ->
              match Hashtbl.find_opt avail n.id with
              | Some a ->
                Hashtbl.replace avail n.id
                  (Float.max 0. (a -. (delta *. float_of_int m)))
              | None -> ())
            f.through)
        live;
      (* Freeze flows at saturated nodes or at their caps. *)
      let progressed = ref false in
      List.iter
        (fun f ->
          let at_cap = f.current_rate >= f.rate_cap -. eps in
          let saturated =
            List.exists
              (fun (n, _) ->
                match Hashtbl.find_opt avail n.id with
                | Some a -> a <= eps
                | None -> false)
              f.through
          in
          if at_cap || saturated then begin
            Hashtbl.replace frozen f.fid ();
            progressed := true
          end)
        live;
      (* Guard against numerical stalls: if nothing froze, freeze all. *)
      if !progressed then fill ()
      else List.iter (fun f -> Hashtbl.replace frozen f.fid ()) live
    end
  in
  fill ();
  t.dirty <- false

let ensure t = if t.dirty then recompute t

let rate t f =
  ensure t;
  if f.state = Active then f.current_rate else 0.

let active_count t = List.length (active t)

let next_completion t =
  ensure t;
  List.fold_left
    (fun acc f ->
      if f.state = Active && f.current_rate > 0. then begin
        let dt = f.remaining /. f.current_rate in
        match acc with
        | Some (best, _) when best <= dt -> acc
        | _ -> Some (dt, f)
      end
      else acc)
    None (active t)

let advance t dt =
  if dt < 0. then invalid_arg "Flow_net.advance: negative dt";
  ensure t;
  let completed = ref [] in
  List.iter
    (fun f ->
      if f.state = Active && f.current_rate > 0. then begin
        let moved = f.current_rate *. dt in
        f.remaining <- f.remaining -. moved;
        List.iter
          (fun (n, m) -> n.transferred <- n.transferred +. (moved *. float_of_int m))
          f.through;
        (* Sub-byte remainders are rounding noise (the ulp of a multi-TiB
           transfer exceeds 1e-4 bytes); treating them as live would make
           the next completion step smaller than the clock's resolution. *)
        if f.remaining <= 1. then begin
          f.remaining <- 0.;
          f.state <- Done;
          f.current_rate <- 0.;
          completed := f :: !completed;
          t.dirty <- true
        end
      end)
    (active t);
  List.rev !completed

let node_bytes _ n = n.transferred
let active_flows = active
