(* Domain pool: a Mutex/Condition work queue feeding [jobs - 1] spawned
   domains, with the submitting domain helping on its own batches.

   Memory-model note: workers write batch results into disjoint slots of a
   shared array and then decrement the batch counter under the pool mutex;
   the submitter only reads the array after observing the counter hit zero
   under the same mutex, so every write happens-before every read.

   Audited SA007 suppression: the pool's lock/unlock pairs implement the
   Mutex/Condition work-queue protocol — Condition.wait runs with the
   lock held and hands it back on wakeup, and the help loop interleaves
   lock ownership with task execution — shapes Mutex.protect cannot
   express. Every unlock path is written out explicitly below. *)
[@@@sslint.allow "SA007"]

type batch = {
  mutable remaining : int;  (* chunks not yet finished *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
      (* failed input of the smallest index seen so far *)
  mutable cancelled : bool;
  finished : Condition.t;  (* signalled when [remaining] reaches zero *)
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or on shutdown *)
  queue : (float * (unit -> unit)) Queue.t;
      (* (enqueue time, task); tasks never raise. The timestamp is 0. when
         stats are disabled — taken only to measure queue-wait time. *)
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Engine metrics: how many tasks each domain ran (index 0 is the
   submitting domain, which helps on its own batches) and how long tasks
   sat queued before a domain picked them up. Aggregated across pools. *)
let obs_queue_wait = Storage_obs.Histogram.make "pool.queue_wait_seconds"

(* Audited SA002 suppression: this registry is created once, read and
   written only under its own lock just below, and holds counters — the
   same discipline as the audited Storage_obs registry it feeds. *)
let[@sslint.allow "SA002"] obs_domain_tasks =
  (* Registering eagerly for a few indexes keeps the snapshot's key set
     stable; wider pools extend it on demand. *)
  let lock = Mutex.create () in
  let known = Hashtbl.create 16 in
  let get i =
    Mutex.lock lock;
    let c =
      match Hashtbl.find_opt known i with
      | Some c -> c
      | None ->
        let c =
          Storage_obs.Counter.make (Printf.sprintf "pool.domain.%d.tasks" i)
        in
        Hashtbl.replace known i c;
        c
    in
    Mutex.unlock lock;
    c
  in
  ignore (get 0);
  get

let record_task ~domain_index ~enqueued_at =
  if Storage_obs.enabled () then begin
    Storage_obs.Counter.incr (obs_domain_tasks domain_index);
    (* Tasks enqueued while stats were disabled carry [enqueued_at = 0.]
       (no timestamp was taken); recording those would log a bogus
       ~epoch-sized wait when stats come on mid-batch. The wait itself is
       clamped: both reads are wall clock (see {!Storage_obs.now}), so a
       clock step between enqueue and pickup could otherwise go
       negative. *)
    if enqueued_at > 0. then
      Storage_obs.Histogram.observe obs_queue_wait
        (Float.max 0. (Storage_obs.now () -. enqueued_at))
  end

let worker ~index t =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closing do
      Condition.wait t.work t.lock
    done;
    match Queue.take_opt t.queue with
    | None ->
      (* closing, and the queue is drained *)
      Mutex.unlock t.lock
    | Some (enqueued_at, task) ->
      Mutex.unlock t.lock;
      record_task ~domain_index:index ~enqueued_at;
      task ();
      loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
      jobs;
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker ~index:(i + 1) t));
  t

let size t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  let workers = t.workers in
  t.workers <- [];
  t.closing <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Called with [t.lock] held. *)
let record_failure batch i exn bt =
  (match batch.failure with
  | Some (j, _, _) when j <= i -> ()
  | Some _ | None -> batch.failure <- Some (i, exn, bt));
  batch.cancelled <- true

let map_on ?chunk t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    let input = Array.of_list xs in
    let n = Array.length input in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.map: chunk must be >= 1"
      | None -> max 1 (n / (t.jobs * 4))
    in
    let nchunks = (n + chunk - 1) / chunk in
    let results = Array.make n None in
    let batch =
      { remaining = nchunks; failure = None; cancelled = false;
        finished = Condition.create () }
    in
    (* Audited SA006 suppression: the catch-all does not swallow —
       every exception (fatal ones included) is recorded with its
       backtrace and re-raised by the batch wait below, preserving the
       first-failing-index contract. *)
    let[@sslint.allow "SA006"] run_chunk start =
      Mutex.lock t.lock;
      let cancelled = batch.cancelled in
      Mutex.unlock t.lock;
      if not cancelled then
        for i = start to min n (start + chunk) - 1 do
          match f input.(i) with
          | y -> results.(i) <- Some y
          | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.lock;
            record_failure batch i exn bt;
            Mutex.unlock t.lock
        done;
      Mutex.lock t.lock;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock t.lock
    in
    let enqueued_at =
      if Storage_obs.enabled () then Storage_obs.now () else 0.
    in
    Mutex.lock t.lock;
    for c = 0 to nchunks - 1 do
      Queue.add (enqueued_at, fun () -> run_chunk (c * chunk)) t.queue
    done;
    Condition.broadcast t.work;
    (* Help until this batch completes; tasks popped here may belong to
       other batches, which is fine — somebody has to run them. *)
    let rec help () =
      if batch.remaining > 0 then
        match Queue.take_opt t.queue with
        | Some (enqueued_at, task) ->
          Mutex.unlock t.lock;
          record_task ~domain_index:0 ~enqueued_at;
          task ();
          Mutex.lock t.lock;
          help ()
        | None ->
          Condition.wait batch.finished t.lock;
          help ()
    in
    help ();
    Mutex.unlock t.lock;
    (match batch.failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ());
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) results)

(* Streaming map: materialize a bounded window of the input, run it as an
   ordinary [map_on] batch, yield the results in order, refill. Peak
   memory is O(window), whatever the length of the input sequence. An
   exception inside a window surfaces when that window is forced — i.e.
   after every result of earlier windows has been yielded, which keeps
   the "first exception by input index" contract of [map_on].

   Scheduling granularity: each window is dealt to the domains in
   contiguous chunks of [chunk] elements — one queue task per chunk, not
   per element. The per-task cost (queue mutex traffic, condition
   signalling, closure allocation) is tens of microseconds; evaluations
   are single-digit microseconds. Only batching hundreds of them per
   task makes the dispatch overhead vanish against the work. The default
   window is sized so that the auto chunk lands in the hundreds while
   still giving every domain a few chunks per window to smooth uneven
   evaluation times. *)
let default_window jobs = 512 * jobs

(* Auto chunk for one window's batch: as coarse as the cap allows (a full
   window deals chunks of hundreds), but never so coarse that a short
   batch — the tail of a grid, or a grid smaller than one window — leaves
   domains idle. *)
let auto_chunk ~window ~jobs ~len =
  max 1 (min (window / (jobs * 2)) (len / jobs))

let map_seq ?window ?chunk t f xs =
  let window =
    match window with
    | Some w when w >= 1 -> w
    | Some _ -> invalid_arg "Pool.map_seq: window must be >= 1"
    | None -> default_window t.jobs
  in
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool.map_seq: chunk must be >= 1"
  | Some _ | None -> ());
  let rec take acc n xs =
    if n = 0 then (List.rev acc, xs)
    else
      match xs () with
      | Seq.Nil -> (List.rev acc, Seq.empty)
      | Seq.Cons (x, rest) -> take (x :: acc) (n - 1) rest
  in
  let rec windows xs () =
    match take [] window xs with
    | [], _ -> Seq.Nil
    | batch, rest ->
      let chunk =
        match chunk with
        | Some c -> c
        | None ->
          auto_chunk ~window ~jobs:t.jobs ~len:(List.length batch)
      in
      Seq.append (List.to_seq (map_on ~chunk t f batch)) (windows rest) ()
  in
  windows xs

let map ?chunk ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
    if jobs = 1 then List.map f xs
    else with_pool ~jobs (fun t -> map_on ?chunk t f xs)
