(** A concurrent string-keyed memo table.

    Backs the evaluation cache: design-space search, sensitivity sweeps and
    portfolio evaluation repeatedly evaluate identical (design, scenario)
    pairs, and their evaluations are pure, so results can be computed once
    and shared — including across the domains of a {!Pool}.

    All operations are thread-safe (a single [Mutex] guards the table; the
    user-supplied compute function runs {e outside} the lock). When two
    domains race to fill the same key, both compute but the first insert
    wins and every caller observes that single value thereafter; for the
    pure functions this caches, the race is only a little wasted work,
    never a semantic difference. *)

type 'a t

val create : ?size:int -> unit -> 'a t
(** [size] is the initial table sizing hint (default 64). *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key compute] returns the cached value for [key], or runs
    [compute ()], caches it, and returns it. If [compute] raises, nothing
    is cached and the exception propagates. *)

val find : 'a t -> string -> 'a option
val length : 'a t -> int

val hits : 'a t -> int
(** Lookups answered from the table since creation (or [clear]). *)

val misses : 'a t -> int
(** Lookups that had to compute. *)

val clear : 'a t -> unit
(** Empties the table and resets the hit/miss counters. *)
