(** A concurrent string-keyed memo table.

    Backs the evaluation cache: design-space search, sensitivity sweeps and
    portfolio evaluation repeatedly evaluate identical (design, scenario)
    pairs, and their evaluations are pure, so results can be computed once
    and shared — including across the domains of a {!Pool}.

    All operations are thread-safe (a single [Mutex] guards the table; the
    user-supplied compute function runs {e outside} the lock). When two
    domains race to fill the same key, both compute but the first insert
    wins and every caller observes that single value thereafter; for the
    pure functions this caches, the race is only a little wasted work,
    never a semantic difference. *)

type 'a t

val create : ?max_entries:int -> ?size:int -> unit -> 'a t
(** [size] is the initial table sizing hint (default 64).

    [max_entries] bounds the table: once it holds that many values, each
    insert evicts the oldest-inserted entry (FIFO) so long what-if
    sessions cannot grow the cache without bound. The default is
    unbounded, preserving the original behaviour. Raises
    [Invalid_argument] when [max_entries < 1]. Eviction affects only
    {e time} (an evicted key recomputes on next use), never a value. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key compute] returns the cached value for [key], or runs
    [compute ()], caches it, and returns it. If [compute] raises, nothing
    is cached and the exception propagates. *)

val find : 'a t -> string -> 'a option
val length : 'a t -> int

val hits : 'a t -> int
(** Lookups answered from the table since creation (or [clear]). *)

val misses : 'a t -> int
(** Lookups that had to compute. *)

val evicted : 'a t -> int
(** Entries evicted by the [max_entries] bound since creation (or
    [clear]); always [0] for an unbounded table. Also exported
    process-wide as the [memo.evicted] counter of {!Storage_obs}. *)

val clear : 'a t -> unit
(** Empties the table and resets the hit/miss/evicted counters. *)
