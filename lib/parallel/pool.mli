(** A fixed-size OCaml 5 domain pool with a shared work queue.

    The evaluation hot paths of the framework — design-space search,
    sensitivity sweeps, portfolio evaluation, failure-phase sweeps — are
    embarrassingly parallel: every (design, scenario) evaluation is a pure
    function of its inputs. This module runs such workloads across
    [Domain]s coordinated by a [Mutex]/[Condition] work queue, using only
    the standard library.

    Guarantees:
    - {b Deterministic results}: [map] returns results in input order, and
      each result is produced by applying [f] to the corresponding input
      exactly as the serial [List.map f] would (workers write into disjoint
      slots of a pre-sized result array). [map ~jobs:1] {e is}
      [List.map].
    - {b Chunked scheduling}: inputs are dealt to workers in contiguous
      chunks so that short tasks do not drown in queue traffic; the chunk
      size adapts to the input length, or can be forced with [?chunk].
    - {b First-exception propagation}: if [f] raises, the batch is
      cancelled (chunks not yet started are skipped), the pool is drained,
      and the exception of the {e smallest} input index among those
      evaluated is re-raised with its backtrace in the calling domain.

    The submitting domain participates in every batch, so a pool of [jobs]
    computes on [jobs] domains in total ([jobs - 1] spawned workers plus
    the caller). *)

type t
(** A pool of worker domains. A pool may be reused for many [map_on]
    batches (amortizing domain spawn cost) and must be [shutdown] when no
    longer needed. Submitting from several domains at once is supported;
    shutting down while a batch is in flight is not. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. Raises
    [Invalid_argument] when [jobs < 1]. *)

val size : t -> int
(** The [jobs] the pool was created with. *)

val shutdown : t -> unit
(** Drains the queue, stops the workers and joins their domains.
    Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool, shutting it down on the
    way out (including on exceptions). *)

val map_on : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [map_on pool f xs] is [List.map f xs], computed on the pool's domains.
    [?chunk] forces the scheduling granularity (default: input length
    divided by four times the pool size, at least 1). Raises
    [Invalid_argument] when [chunk < 1]; re-raises the first exception of
    [f] as described above. Lists of length [<= 1] are mapped inline in
    the calling domain. *)

val map_seq :
  ?window:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a Seq.t -> 'b Seq.t
(** [map_seq pool f xs] is [Seq.map f xs] computed on the pool's domains:
    the input is consumed in windows of [?window] elements (default
    [512 * jobs]), each window is dispatched as a [map_on] batch of
    contiguous [?chunk]-element tasks (default
    [min (window / (2 * jobs)) (len / jobs)] for a [len]-element batch:
    chunks of hundreds of evaluations on full windows, finer on a short
    tail so no domain idles), and the results are yielded in input order
    before the next window is read. Peak live memory is O(window) however long [xs] is, so a
    million-element grid streams through a constant-size working set.
    Coarse chunks are what make fine-grained workloads scale: one queue
    task per element would spend more time under the queue mutex than in
    [f] when [f] runs in microseconds.

    Forcing the first element of a window runs the whole window; an
    exception raised by [f] propagates when its window is forced (the
    smallest input index within the window wins, as in [map_on]), after
    all earlier windows' results have been yielded. The returned sequence
    re-maps on re-traversal, so it is persistent iff [xs] is persistent
    and [f] is pure (every [f] this library is used with is pure).
    Raises [Invalid_argument] when [window < 1] or [chunk < 1]. *)

val map : ?chunk:int -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [map ~jobs f xs] creates a pool, maps, and shuts
    the pool down (also on exceptions). [~jobs:1] short-circuits to
    [List.map f xs] with no domain machinery. Raises [Invalid_argument]
    when [jobs < 1]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible [~jobs] for this
    machine. *)
