type 'a t = {
  lock : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 64) () =
  { lock = Mutex.create (); table = Hashtbl.create size; hits = 0; misses = 0 }

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.lock;
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    let v = compute () in
    Mutex.lock t.lock;
    let v =
      (* Another domain may have raced us here; keep the first insert so
         every caller shares one value. *)
      match Hashtbl.find_opt t.table key with
      | Some existing -> existing
      | None ->
        Hashtbl.add t.table key v;
        v
    in
    Mutex.unlock t.lock;
    v

let find t key =
  Mutex.lock t.lock;
  let v = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  v

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let hits t =
  Mutex.lock t.lock;
  let n = t.hits in
  Mutex.unlock t.lock;
  n

let misses t =
  Mutex.lock t.lock;
  let n = t.misses in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Mutex.unlock t.lock
