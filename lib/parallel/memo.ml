(* Audited SA007 suppression: the memo deliberately drops its lock
   while computing a missed entry (so one slow computation never blocks
   other keys), then reacquires it to publish — an unlock-in-the-middle
   shape Mutex.protect cannot express. Every path below unlocks before
   raising or returning. *)
[@@@sslint.allow "SA007"]

(* Global engine metrics, aggregated across every memo instance in the
   process (the observability layer reports cache behaviour as a whole;
   per-instance counts remain available on each [t]). *)
let obs_hits = Storage_obs.Counter.make "memo.hits"
let obs_misses = Storage_obs.Counter.make "memo.misses"
let obs_evicted = Storage_obs.Counter.make "memo.evicted"
let live_entries = Atomic.make 0

let () =
  Storage_obs.gauge "memo.entries" (fun () ->
      float_of_int (Atomic.get live_entries))

type 'a t = {
  lock : Mutex.t;
  table : (string, 'a) Hashtbl.t;
  fifo : string Queue.t;  (* insertion order; maintained only when bounded *)
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
}

let create ?max_entries ?(size = 64) () =
  (match max_entries with
  | Some n when n < 1 -> invalid_arg "Memo.create: max_entries must be >= 1"
  | Some _ | None -> ());
  {
    lock = Mutex.create ();
    table = Hashtbl.create size;
    fifo = Queue.create ();
    max_entries;
    hits = 0;
    misses = 0;
    evicted = 0;
  }

(* Called with [t.lock] held, after an insert. *)
let enforce_bound t =
  match t.max_entries with
  | None -> ()
  | Some bound ->
    while Hashtbl.length t.table > bound do
      match Queue.take_opt t.fifo with
      | None -> assert false (* fifo mirrors the table when bounded *)
      | Some oldest ->
        if Hashtbl.mem t.table oldest then begin
          Hashtbl.remove t.table oldest;
          t.evicted <- t.evicted + 1;
          Storage_obs.Counter.incr obs_evicted;
          ignore (Atomic.fetch_and_add live_entries (-1))
        end
    done

let insert t key v =
  Hashtbl.add t.table key v;
  if t.max_entries <> None then Queue.add key t.fifo;
  Atomic.incr live_entries;
  enforce_bound t

let find_or_add t key compute =
  Mutex.lock t.lock;
  match Hashtbl.find_opt t.table key with
  | Some v ->
    t.hits <- t.hits + 1;
    Mutex.unlock t.lock;
    Storage_obs.Counter.incr obs_hits;
    v
  | None ->
    t.misses <- t.misses + 1;
    Mutex.unlock t.lock;
    Storage_obs.Counter.incr obs_misses;
    let v = compute () in
    Mutex.lock t.lock;
    let v =
      (* Another domain may have raced us here; keep the first insert so
         every caller shares one value. *)
      match Hashtbl.find_opt t.table key with
      | Some existing -> existing
      | None ->
        insert t key v;
        v
    in
    Mutex.unlock t.lock;
    v

let find t key =
  Mutex.lock t.lock;
  let v = Hashtbl.find_opt t.table key in
  Mutex.unlock t.lock;
  v

let length t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.lock;
  n

let hits t =
  Mutex.lock t.lock;
  let n = t.hits in
  Mutex.unlock t.lock;
  n

let misses t =
  Mutex.lock t.lock;
  let n = t.misses in
  Mutex.unlock t.lock;
  n

let evicted t =
  Mutex.lock t.lock;
  let n = t.evicted in
  Mutex.unlock t.lock;
  n

let clear t =
  Mutex.lock t.lock;
  ignore (Atomic.fetch_and_add live_entries (-Hashtbl.length t.table));
  Hashtbl.reset t.table;
  Queue.clear t.fifo;
  t.hits <- 0;
  t.misses <- 0;
  t.evicted <- 0;
  Mutex.unlock t.lock
