(** Loading and classifying project sources for analysis.

    Files are parsed with the compiler's own front end
    ([compiler-libs.common]), so every rule sees the real abstract
    syntax — aliases, [open]s and arbitrary layout cannot defeat a rule
    the way they defeated the retired line-regex checker.

    Rules scope by {e directory role}, recovered from the path: a file
    under a [lib] component is library code (with its sub-library name,
    e.g. [lib/serve] → [Lib "serve"]), [bin]/[bench]/[tools] are the
    executables. A path with no recognizable component classifies as
    [Lib ""] — the strictest role — so fixtures and odd invocations err
    toward checking more, not less. *)

type dir =
  | Lib of string  (** sub-library directory name, [""] at [lib/] root *)
  | Bin
  | Bench
  | Tools
  | Test

type kind = Impl  (** [.ml] *) | Intf  (** [.mli] *)

type ctx = {
  path : string;  (** as given *)
  base : string;  (** [Filename.basename path] *)
  dir : dir;
  kind : kind;
}

val classify : string -> ctx
(** Classification is purely lexical on the path components; the last
    matching role component wins ([test/analysis/fixtures/lib/x.ml] is
    library-scoped). *)

val in_lib : ctx -> bool

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

val parse : ctx -> string -> (parsed, Finding.t) result
(** Parses the given source text. A syntax (or lexer) error becomes an
    [SA000] finding at the failure position; asynchronous exceptions
    ([Out_of_memory], [Stack_overflow], [Sys.Break]) re-raise. *)

val load : string -> (ctx * parsed, Finding.t) result
(** {!classify}, read and {!parse} one file; an unreadable file is an
    [SA000] finding naming the [Sys_error]. *)
