type t = {
  code : string;
  severity : Finding.severity;
  title : string;
  ported : bool;
}

let r code severity ported title = { code; severity; title; ported }

let all =
  [
    r "SA000" Error false "source file does not parse";
    r "SA001" Error true
      "ambient randomness: Random referenced outside the seeded PRNG \
       modules (alias- and open-robust)";
    r "SA002" Error true
      "top-level mutable Hashtbl outside the audited shared-state modules";
    r "SA003" Error true
      "library code terminates the process (exit, however spelled or split)";
    r "SA004" Error true "socket primitive outside lib/serve";
    r "SA005" Error true
      "?jobs/?cache/?lint in a public interface outside lib/engine (route \
       the engine context through ?engine)";
    r "SA006" Error false
      "catch-all exception handler swallows Out_of_memory / Stack_overflow \
       / Sys.Break";
    r "SA007" Warning false
      "resource acquisition (Unix.openfile/socket, Mutex.lock) in a binding \
       without Fun.protect/Mutex.protect";
    r "SA008" Warning false
      "float equality: =/<>/==/compare against a non-zero float literal or \
       float-annotated operand";
    r "SA009" Error false "Marshal/Obj outside the audited allowlist";
    r "SA010" Error false
      "top-level mutable state (ref, Array.make, Buffer/Queue/Stack.create) \
       outside the audited shared-state modules";
    r "SA011" Warning false
      "unused [@sslint.allow] suppression (nothing at this scope fires the \
       code)";
  ]

let find code = List.find_opt (fun r -> String.equal r.code code) all
let mem code = find code <> None

let severity code =
  match find code with Some r -> r.severity | None -> Finding.Error
