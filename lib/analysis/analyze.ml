type report = { files : int; findings : Finding.t list }

let file path =
  match Source.load path with
  | Error f -> [ f ]
  | Ok (ctx, parsed) ->
    let suppressions = Suppress.collect ctx parsed in
    let raw = Rules.check ctx parsed in
    let kept = List.filter (fun f -> not (Suppress.drop suppressions f)) raw in
    List.sort Finding.compare (kept @ Suppress.unused suppressions)

let is_ocaml_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

let skip_dir name = name = "_build" || (name <> "" && name.[0] = '.')

let ocaml_sources roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc entry ->
             if skip_dir entry then acc
             else begin
               let sub = Filename.concat path entry in
               if Sys.is_directory sub then walk acc sub
               else if is_ocaml_source entry then sub :: acc
               else acc
             end)
           acc
    else if is_ocaml_source path then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.sort_uniq String.compare

let paths roots =
  let files = ocaml_sources roots in
  let findings = List.concat_map file files in
  { files = List.length files; findings = List.sort Finding.compare findings }
