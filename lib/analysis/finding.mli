(** One finding of the project source analyzer ({!Storage_analysis}).

    The analyzer reports against {e source files}, so a finding carries a
    [file:line:col] position instead of {!Storage_lint.Diagnostic}'s
    structured design locations — but it reuses the design linter's
    severity scale and rendering conventions (stable codes, a human
    table, stable JSON), so the two tools read the same in a terminal or
    a CI log. *)

type severity = Storage_lint.Diagnostic.severity = Error | Warning | Info

type t = {
  code : string;  (** stable rule code, e.g. ["SA001"] *)
  severity : severity;
  file : string;  (** path as given to the analyzer *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching the compiler's convention *)
  message : string;
}

val make :
  code:string ->
  severity ->
  file:string ->
  line:int ->
  col:int ->
  ('a, unit, string, t) format4 ->
  'a
(** [make ~code severity ~file ~line ~col fmt ...] builds a finding with
    a printf-formatted message. *)

val compare : t -> t -> int
(** Total order used for stable output: file, position, severity, code,
    message. *)

val errors : t list -> t list
val warnings : t list -> t list

val exit_code : ?deny_warnings:bool -> t list -> int
(** [2] with errors, [1] with warnings under [~deny_warnings:true], [0]
    otherwise — the same contract as [ssdep lint]. *)

val pp : t Fmt.t
(** One table row: position, code, severity, message. *)

val pp_report : files:int -> t list Fmt.t
(** The findings table followed by a severity summary
    (["clean: N file(s) analyzed"] when empty). *)

val to_json : files:int -> t list -> Storage_report.Json.t
(** Stable machine-readable form: tool name, file count, the ordered
    findings, and per-severity counts. *)
