(** The AST rule implementations.

    Each rule walks the parsetree ({!Ast_iterator}), so it matches
    {e identifiers and structure}, not text: [module R = Random],
    [open Random], a longident split across lines, or a binding with the
    creation call on its own line all still fire, where the retired
    regex checker went blind. String literals never fire a rule —
    the analyzer can mention ["Random."] in its own sources safely. *)

val check : Source.ctx -> Source.parsed -> Finding.t list
(** All findings for one parsed file, deduplicated and in {!Finding.compare}
    order. Suppressions are {e not} applied here — {!Analyze} filters
    through {!Suppress} so unused suppressions can be detected. *)
