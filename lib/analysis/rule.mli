(** The SA-rule registry.

    Stable codes, one entry per rule the AST engine ({!Rules})
    implements, documented rule by rule in DESIGN.md ("Project static
    analysis"). [SA001]–[SA005] are the AST-grade ports of the five
    invariants the retired regex checker ([tools/check_sources.ml])
    enforced; [SA006]+ are rules a line regex cannot express. *)

type t = {
  code : string;  (** stable code, e.g. ["SA001"] *)
  severity : Finding.severity;
  title : string;  (** one line, for the DESIGN.md table and [--rules] *)
  ported : bool;
      (** true when the rule ports an invariant of the retired
          [check_sources.ml] regex checker *)
}

val all : t list
(** Every rule, in code order. Codes are unique; the test suite holds a
    firing fixture against each one. *)

val find : string -> t option
val mem : string -> bool

val severity : string -> Finding.severity
(** Severity of a known code; [Error] for unknown ones (only reachable
    through internal misuse, not user input). *)
