(** Driving the analyzer over files and directory trees. *)

type report = { files : int; findings : Finding.t list }

val file : string -> Finding.t list
(** Analyze one file: parse, run every rule, apply [[@sslint.allow]]
    suppressions, and report unused suppressions ([SA011]). *)

val ocaml_sources : string list -> string list
(** The [.ml]/[.mli] files under the given paths (a path may itself be a
    file), recursively, skipping dot-directories and [_build]; sorted
    and de-duplicated so a run is deterministic regardless of the
    filesystem's ordering. *)

val paths : string list -> report
(** {!file} over {!ocaml_sources}, findings merged in
    {!Finding.compare} order. *)
