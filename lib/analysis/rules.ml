open Parsetree

(* Longident helpers. A custom flatten: [Longident.flatten] raises on
   functor applications; we just keep the applied path instead. *)
let rec flat_acc acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flat_acc (s :: acc) l
  | Longident.Lapply (_, l) -> flat_acc acc l

let flat lid = flat_acc [] lid

let split_last l =
  match List.rev l with [] -> ([], "") | n :: ms -> (List.rev ms, n)

let modules lid = fst (split_last (flat lid))
let name lid = snd (split_last (flat lid))
let dotted lid = String.concat "." (flat lid)

(* --- predicates shared between rules ------------------------------ *)

let socket_names =
  [
    "socket";
    "socketpair";
    "bind";
    "listen";
    "accept";
    "connect";
    "setsockopt";
    "setsockopt_optint";
    "setsockopt_float";
  ]

let fatal_names = [ "Out_of_memory"; "Stack_overflow"; "Break" ]

let rec pat_is_catch_all p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_is_catch_all p
  | Ppat_or (a, b) -> pat_is_catch_all a || pat_is_catch_all b
  | _ -> false

let rec pat_mentions_fatal p =
  match p.ppat_desc with
  | Ppat_construct (lid, _) -> List.mem (name lid.txt) fatal_names
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_mentions_fatal p
  | Ppat_or (a, b) -> pat_mentions_fatal a || pat_mentions_fatal b
  | _ -> false

let expr_mem pred e =
  let found = ref false in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self x ->
          if pred x then found := true;
          if not !found then default_iterator.expr self x);
    }
  in
  it.expr it e;
  !found

let is_ident_named names e =
  match e.pexp_desc with
  | Pexp_ident lid -> List.mem (name lid.txt) names
  | _ -> false

let expr_contains_raise = expr_mem (is_ident_named [ "raise"; "raise_notrace" ])

let expr_contains_protect =
  expr_mem (fun e ->
      match e.pexp_desc with
      | Pexp_ident lid ->
        name lid.txt = "protect"
        && (match modules lid.txt with
           | [ ("Fun" | "Mutex") ] -> true
           | _ -> false)
      | _ -> false)

(* Resource acquisitions SA007 cares about: the fd- and lock-shaped
   ones, where leaking on an exception wedges the process. *)
let acquisition_of fn =
  match fn.pexp_desc with
  | Pexp_ident lid -> (
    match (modules lid.txt, name lid.txt) with
    | [ "Unix" ], ("openfile" | "socket") | [ "Mutex" ], "lock" ->
      Some (dotted lid.txt)
    | _ -> None)
  | _ -> None

let is_float_type lid =
  match flat lid with [ "float" ] | [ "Stdlib"; "float" ] -> true | _ -> false

let floaty_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float (s, _)) -> float_of_string s <> 0.0
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr (lid, []); _ }) ->
    is_float_type lid.txt
  | _ -> false

(* --- the engine --------------------------------------------------- *)

let check (ctx : Source.ctx) parsed =
  let acc = ref [] in
  let emit ~code loc msg =
    let p = loc.Location.loc_start in
    acc :=
      Finding.make ~code (Rule.severity code) ~file:ctx.path
        ~line:p.Lexing.pos_lnum
        ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
        "%s" msg
      :: !acc
  in
  let in_lib = Source.in_lib ctx in
  let lib_sub = match ctx.dir with Source.Lib s -> Some s | _ -> None in
  let exempt bases = List.mem ctx.base bases in
  let sa001_applies = in_lib && not (exempt [ "prng.ml"; "seeded.ml" ]) in
  let sa004_applies = in_lib && lib_sub <> Some "serve" in
  let sa009_applies =
    not
      ((ctx.dir = Source.Lib "testkit" && ctx.base = "oracle.ml")
      || (ctx.dir = Source.Bench && ctx.base = "main.ml"))
  in
  let unix_open = ref 0 in
  let path_check ~loc components =
    if sa001_applies && List.mem "Random" components then
      emit ~code:"SA001" loc
        (Printf.sprintf
           "%s: ambient randomness; route through the seeded PRNG (lib/prng)"
           (String.concat "." components));
    if sa009_applies then
      List.iter
        (fun m ->
          if m = "Marshal" || m = "Obj" then
            emit ~code:"SA009" loc
              (Printf.sprintf "%s referenced outside the audited allowlist" m))
        components
  in
  let is_unix_module me =
    match me.pmod_desc with
    | Pmod_ident lid -> name lid.txt = "Unix"
    | _ -> false
  in
  let check_handler_cases cases =
    (* [cases] are exception-handler cases in source order. *)
    let rec find_catch_all earlier = function
      | [] -> None
      | c :: rest ->
        if pat_is_catch_all c.pc_lhs && c.pc_guard = None then
          Some (List.rev earlier, c)
        else find_catch_all (c :: earlier) rest
    in
    match find_catch_all [] cases with
    | None -> ()
    | Some (earlier, catch_all) ->
      let reraises_fatal_first =
        List.exists
          (fun c ->
            pat_mentions_fatal c.pc_lhs && expr_contains_raise c.pc_rhs)
          earlier
      in
      let safe = reraises_fatal_first || expr_contains_raise catch_all.pc_rhs in
      if not safe then
        emit ~code:"SA006" catch_all.pc_lhs.ppat_loc
          "catch-all handler swallows Out_of_memory/Stack_overflow/Sys.Break; \
           re-raise fatal exceptions first"
  in
  let check_expr e =
    match e.pexp_desc with
    | Pexp_ident lid ->
      path_check ~loc:e.pexp_loc (flat lid.txt);
      if in_lib then begin
        match flat lid.txt with
        | [ "exit" ] | [ "Stdlib"; "exit" ] ->
          emit ~code:"SA003" e.pexp_loc
            (Printf.sprintf "process exit from library code (%s)"
               (dotted lid.txt))
        | _ -> ()
      end;
      if sa004_applies && List.mem (name lid.txt) socket_names then begin
        match modules lid.txt with
        | [ "Unix" ] | [ "UnixLabels" ] ->
          emit ~code:"SA004" e.pexp_loc
            (Printf.sprintf "socket primitive %s outside lib/serve"
               (dotted lid.txt))
        | [] when !unix_open > 0 ->
          emit ~code:"SA004" e.pexp_loc
            (Printf.sprintf
               "socket primitive %s (via open Unix) outside lib/serve"
               (name lid.txt))
        | _ -> ()
      end
    | Pexp_try (_, cases) -> check_handler_cases cases
    | Pexp_match (_, cases) ->
      let handler_cases =
        List.filter_map
          (fun c ->
            match c.pc_lhs.ppat_desc with
            | Ppat_exception p -> Some { c with pc_lhs = p }
            | _ -> None)
          cases
      in
      if handler_cases <> [] then check_handler_cases handler_cases
    | Pexp_apply (fn, args) ->
      if
        is_ident_named [ "="; "<>"; "=="; "!="; "compare" ] fn
        && (match fn.pexp_desc with
           | Pexp_ident lid -> (
             match modules lid.txt with [] | [ "Stdlib" ] -> true | _ -> false)
           | _ -> false)
        && List.exists (fun (_, a) -> floaty_operand a) args
      then
        emit ~code:"SA008" e.pexp_loc
          "exact float comparison; use an epsilon or Float.equal"
    | _ -> ()
  in
  let open Ast_iterator in
  let expr self e =
    check_expr e;
    match e.pexp_desc with
    | Pexp_open (od, _) when is_unix_module od.popen_expr ->
      incr unix_open;
      default_iterator.expr self e;
      decr unix_open
    | _ -> default_iterator.expr self e
  in
  let module_expr self me =
    (match me.pmod_desc with
    | Pmod_ident lid -> path_check ~loc:me.pmod_loc (flat lid.txt)
    | _ -> ());
    default_iterator.module_expr self me
  in
  let typ self ty =
    (match ty.ptyp_desc with
    | Ptyp_constr (lid, _) -> path_check ~loc:ty.ptyp_loc (modules lid.txt)
    | _ -> ());
    default_iterator.typ self ty
  in
  let structure_item self si =
    (match si.pstr_desc with
    | Pstr_open od when is_unix_module od.popen_expr ->
      (* A structure-level [open Unix] scopes to the rest of the file;
         traversal is in source order, so leaving it raised is right. *)
      incr unix_open
    | Pstr_value (_, vbs) when in_lib ->
      List.iter
        (fun vb ->
          if not (expr_contains_protect vb.pvb_expr) then begin
            let it =
              {
                default_iterator with
                expr =
                  (fun self e ->
                    (match e.pexp_desc with
                    | Pexp_apply (fn, _) -> (
                      match acquisition_of fn with
                      | Some what ->
                        emit ~code:"SA007" e.pexp_loc
                          (Printf.sprintf
                             "%s acquired without Fun.protect/Mutex.protect \
                              in the same binding"
                             what)
                      | None -> ())
                    | _ -> ());
                    default_iterator.expr self e);
              }
            in
            it.expr it vb.pvb_expr
          end)
        vbs
    | _ -> ());
    default_iterator.structure_item self si
  in
  let signature_item self si =
    (match si.psig_desc with
    | Psig_value vd
      when ctx.kind = Source.Intf && in_lib && lib_sub <> Some "engine" ->
      (* The [@@deprecated] exemption that once grandfathered the
         legacy_* migration shims is gone with the shims themselves:
         every engine-context argument outside lib/engine is now an
         error, full stop. *)
      let rec arrows ty =
        match ty.ptyp_desc with
        | Ptyp_arrow (label, _, rest) ->
          (match label with
          | Optional (("jobs" | "cache" | "lint") as l) ->
            emit ~code:"SA005" ty.ptyp_loc
              (Printf.sprintf
                 "val %s exposes ?%s outside lib/engine (route the engine \
                  context through ?engine)"
                 vd.pval_name.txt l)
          | _ -> ());
          arrows rest
        | Ptyp_poly (_, ty) -> arrows ty
        | _ -> ()
      in
      arrows vd.pval_type
    | _ -> ());
    default_iterator.signature_item self si
  in
  let it =
    { default_iterator with expr; module_expr; typ; structure_item;
      signature_item }
  in
  (match parsed with
  | Source.Structure s -> it.structure it s
  | Source.Signature s -> it.signature it s);
  (* SA002 / SA010: shared mutable state created at module init time.
     Only bindings evaluated at load count, so the walk stops at any
     function boundary — [let make () = Hashtbl.create 16] is a
     per-call table, not shared state. *)
  let state_exempt = [ "memo.ml"; "eval_cache.ml"; "storage_obs.ml" ] in
  (if ctx.kind = Source.Impl && in_lib && not (exempt state_exempt) then
     let creator fn =
       match fn.pexp_desc with
       | Pexp_ident lid -> (
         match (modules lid.txt, name lid.txt) with
         | [], "ref" | [ "Stdlib" ], "ref" -> Some ("SA010", "ref")
         | [ "Hashtbl" ], "create" -> Some ("SA002", dotted lid.txt)
         | [ "Array" ], ("make" | "init" | "create_float")
         | [ "Bytes" ], ("create" | "make")
         | [ ("Buffer" | "Queue" | "Stack" | "Atomic") ],
           ("create" | "make") ->
           Some ("SA010", dotted lid.txt)
         | _ -> None)
       | _ -> None
     in
     let scan_binding top =
       let expr self e =
         match e.pexp_desc with
         | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> ()
         | _ ->
           (match e.pexp_desc with
           | Pexp_apply (fn, _) -> (
             match creator fn with
             | Some ("SA002", what) ->
               emit ~code:"SA002" e.pexp_loc
                 (Printf.sprintf
                    "top-level %s: shared mutable table outside the audited \
                     modules"
                    what)
             | Some (_, what) ->
               emit ~code:"SA010" e.pexp_loc
                 (Printf.sprintf
                    "top-level mutable state (%s) outside the audited modules"
                    what)
             | None -> ())
           | _ -> ());
           default_iterator.expr self e
       in
       let it = { default_iterator with expr } in
       it.expr it top
     in
     let rec walk_items items =
       List.iter
         (fun si ->
           match si.pstr_desc with
           | Pstr_value (_, vbs) ->
             List.iter (fun vb -> scan_binding vb.pvb_expr) vbs
           | Pstr_module mb -> walk_mod mb.pmb_expr
           | Pstr_recmodule mbs ->
             List.iter (fun mb -> walk_mod mb.pmb_expr) mbs
           | Pstr_include incl -> walk_mod incl.pincl_mod
           | _ -> ())
         items
     and walk_mod me =
       match me.pmod_desc with
       | Pmod_structure s -> walk_items s
       | Pmod_constraint (me, _) -> walk_mod me
       | _ -> ()
     in
     match parsed with
     | Source.Structure s -> walk_items s
     | Source.Signature _ -> ());
  List.sort_uniq Finding.compare !acc
