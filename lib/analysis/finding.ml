module D = Storage_lint.Diagnostic

type severity = D.severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~code severity ~file ~line ~col fmt =
  Printf.ksprintf
    (fun message -> { code; severity; file; line; col; message })
    fmt

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else begin
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else begin
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else begin
        let c =
          Int.compare (D.severity_rank a.severity) (D.severity_rank b.severity)
        in
        if c <> 0 then c
        else begin
          let c = String.compare a.code b.code in
          if c <> 0 then c else String.compare a.message b.message
        end
      end
    end
  end

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let exit_code ?(deny_warnings = false) fs =
  if errors fs <> [] then 2
  else if deny_warnings && warnings fs <> [] then 1
  else 0

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: %-6s %-8s %s" f.file f.line f.col f.code
    (D.severity_name f.severity)
    f.message

let pp_report ~files ppf fs =
  match fs with
  | [] -> Fmt.pf ppf "clean: %d file(s) analyzed" files
  | fs ->
    List.iter (fun f -> Fmt.pf ppf "%a@." pp f) fs;
    Fmt.pf ppf "%d error(s), %d warning(s) across %d file(s)"
      (List.length (errors fs))
      (List.length (warnings fs))
      files

let to_json ~files fs =
  let open Storage_report.Json in
  let finding f =
    Obj
      [
        ("code", String f.code);
        ("severity", String (D.severity_name f.severity));
        ("file", String f.file);
        ("line", Int f.line);
        ("col", Int f.col);
        ("message", String f.message);
      ]
  in
  Obj
    [
      ("tool", String "sslint");
      ("files", Int files);
      ("findings", List (List.map finding fs));
      ( "counts",
        Obj
          [
            ("errors", Int (List.length (errors fs)));
            ("warnings", Int (List.length (warnings fs)));
          ] );
    ]
