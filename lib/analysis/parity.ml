(* A faithful port of tools/check_sources.ml's regexes. Kept verbatim —
   including their blind spots — so the tests can demonstrate exactly
   what the AST rules see that these do not. Delete after one release
   of green parity (see the .mli). *)

type hit = { file : string; line : int; code : string }

let line_rules =
  [
    (* Spelled ["Random" ^ "."] so the retired checker's own port does
       not trip its regex: a line regex cannot tell an identifier from a
       string literal (the AST rules can — that asymmetry is the point
       of this module). The runtime pattern is identical. *)
    ("SA001", Str.regexp_string ("Random" ^ "."), [ "prng.ml"; "seeded.ml" ]);
    ( "SA002",
      Str.regexp "^let .*Hashtbl\\.create",
      [ "memo.ml"; "eval_cache.ml"; "storage_obs.ml" ] );
    ("SA003", Str.regexp "Stdlib\\.exit\\|\\bexit +[0-9(]", []);
  ]

let socket_re =
  Str.regexp
    "Unix\\.\\(socket\\|bind\\|listen\\|accept\\|connect\\|setsockopt\\)"

let engine_args_re = Str.regexp "\\?jobs\\|\\?cache\\|\\?lint"
let val_start_re = Str.regexp "^val "
let deprecated_re = Str.regexp_string "[@@deprecated"

let matches re line =
  match Str.search_forward re line 0 with
  | _ -> true
  | exception Not_found -> false

let lines_of text =
  (* input_line semantics: a trailing newline does not add a line. *)
  let lines = String.split_on_char '\n' text in
  match List.rev lines with "" :: rest -> List.rev rest | _ -> lines

let in_dir name file =
  String.equal (Filename.basename (Filename.dirname file)) name

let scan_ml file text =
  let base = Filename.basename file in
  let hits = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      List.iter
        (fun (code, re, exempt) ->
          if (not (List.mem base exempt)) && matches re line then
            hits := { file; line = lineno; code } :: !hits)
        line_rules;
      if (not (in_dir "serve" file)) && matches socket_re line then
        hits := { file; line = lineno; code = "SA004" } :: !hits)
    (lines_of text);
  List.rev !hits

let scan_mli file text =
  if in_dir "engine" file then []
  else begin
    let hits = ref [] in
    let pending = ref [] and block_deprecated = ref false in
    let flush () =
      if not !block_deprecated then
        List.iter
          (fun line -> hits := { file; line; code = "SA005" } :: !hits)
          (List.rev !pending);
      pending := [];
      block_deprecated := false
    in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        if matches val_start_re line then flush ();
        if matches engine_args_re line then pending := lineno :: !pending;
        if matches deprecated_re line then block_deprecated := true)
      (lines_of text);
    flush ();
    List.rev !hits
  end

let scan_file file text =
  (* The retired checker ran only the val-block scan on interfaces. *)
  if Filename.check_suffix file ".mli" then scan_mli file text
  else scan_ml file text

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan roots =
  (* The retired checker's runtest rule scanned lib/ only; bin, bench
     and tools were never under its regexes (SA003/SA004 scope them out
     deliberately), so the parity comparison is confined the same way. *)
  Analyze.ocaml_sources roots
  |> List.filter (fun file -> Source.in_lib (Source.classify file))
  |> List.concat_map (fun file -> scan_file file (read_file file))

let uncovered hits findings =
  let covered (h : hit) =
    List.exists
      (fun (f : Finding.t) ->
        String.equal f.Finding.file h.file && String.equal f.Finding.code h.code)
      findings
  in
  List.filter (fun h -> not (covered h)) hits
