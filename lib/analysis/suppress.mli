(** [[@sslint.allow "SAxxx"]] suppression handling.

    A rule firing is suppressed when an [allow] attribute naming its
    code encloses the firing line: on an expression, a [let] binding, a
    [val] declaration or a module binding the finding falls inside, or —
    as the floating form [[\@\@\@sslint.allow "..."]] — anywhere in the
    file. One attribute may list several codes separated by spaces.

    Each suppression tracks whether it ever matched; a suppression that
    suppressed nothing is itself reported ([SA011]), so stale [allow]s
    cannot silently outlive the code they excused. *)

type t

val collect : Source.ctx -> Source.parsed -> t
(** Scan the AST for [sslint.allow] attributes. *)

val drop : t -> Finding.t -> bool
(** [drop t f] is true when [f] is suppressed; marks the suppression
    used. Call once per candidate finding, before reporting it. *)

val unused : t -> Finding.t list
(** [SA011] findings for every suppression that never matched, in
    source order. *)
