type dir = Lib of string | Bin | Bench | Tools | Test
type kind = Impl | Intf
type ctx = { path : string; base : string; dir : dir; kind : kind }

let split_components path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun c -> c <> "" && c <> "." && c <> "..")

let classify path =
  let base = Filename.basename path in
  let kind = if Filename.check_suffix base ".mli" then Intf else Impl in
  (* Walk the components, keeping the last role marker; a [lib] marker
     also captures the component right after it as the sub-library. *)
  let rec roles acc = function
    | [] -> acc
    | "lib" :: rest ->
      let sub =
        match rest with
        | next :: _ when not (String.contains next '.') -> next
        | _ -> ""
      in
      roles (Lib sub) rest
    | "bin" :: rest -> roles Bin rest
    | "bench" :: rest -> roles Bench rest
    | "tools" :: rest -> roles Tools rest
    | "test" :: rest -> roles Test rest
    | _ :: rest -> roles acc rest
  in
  let dir = roles (Lib "") (split_components path) in
  { path; base; dir; kind }

let in_lib ctx = match ctx.dir with Lib _ -> true | _ -> false

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

let finding_of_location ctx loc fmt =
  let pos = loc.Location.loc_start in
  Finding.make ~code:"SA000" Finding.Error ~file:ctx.path
    ~line:pos.Lexing.pos_lnum
    ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
    fmt

let parse ctx text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf ctx.path;
  match
    match ctx.kind with
    | Impl -> Structure (Parse.implementation lexbuf)
    | Intf -> Signature (Parse.interface lexbuf)
  with
  | parsed -> Ok parsed
  | exception Syntaxerr.Error err ->
    let loc = Syntaxerr.location_of_error err in
    Error (finding_of_location ctx loc "syntax error")
  | exception ((Out_of_memory | Stack_overflow | Sys.Break) as fatal) ->
    raise fatal
  | exception exn ->
    (* The lexer raises its own (unstable) exception type; report it at
       the position the lexer stopped at. *)
    let loc = Location.curr lexbuf in
    Error
      (finding_of_location ctx loc "does not parse: %s"
         (Printexc.to_string exn))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  let ctx = classify path in
  match read_file path with
  | text -> Result.map (fun p -> (ctx, p)) (parse ctx text)
  | exception Sys_error msg ->
    Error
      (Finding.make ~code:"SA000" Finding.Error ~file:path ~line:1 ~col:0
         "unreadable: %s" msg)
