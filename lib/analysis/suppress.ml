type entry = {
  codes : string list;
  line_lo : int;  (** first line covered; 0 = whole file *)
  line_hi : int;  (** last line covered; max_int = whole file *)
  attr_line : int;
  attr_col : int;
  mutable used : bool;
}

type t = { file : string; mutable entries : entry list }

let payload_codes (attr : Parsetree.attribute) =
  match attr.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    String.split_on_char ' ' s |> List.filter (fun c -> c <> "")
  | _ -> []

let is_allow (attr : Parsetree.attribute) =
  String.equal attr.attr_name.txt "sslint.allow"

let add t ~scope (attr : Parsetree.attribute) =
  if is_allow attr then begin
    match payload_codes attr with
    | [] -> ()
    | codes ->
      let line_lo, line_hi =
        match scope with
        | None -> (0, max_int)
        | Some (loc : Location.t) ->
          (loc.loc_start.pos_lnum, loc.loc_end.pos_lnum)
      in
      let pos = attr.attr_loc.Location.loc_start in
      t.entries <-
        {
          codes;
          line_lo;
          line_hi;
          attr_line = pos.pos_lnum;
          attr_col = pos.pos_cnum - pos.pos_bol;
          used = false;
        }
        :: t.entries
  end

let collect (ctx : Source.ctx) parsed =
  let t = { file = ctx.path; entries = [] } in
  let scoped loc attrs = List.iter (add t ~scope:(Some loc)) attrs in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun self e ->
          scoped e.pexp_loc e.pexp_attributes;
          default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          scoped vb.pvb_loc vb.pvb_attributes;
          default_iterator.value_binding self vb);
      value_description =
        (fun self vd ->
          scoped vd.pval_loc vd.pval_attributes;
          default_iterator.value_description self vd);
      module_binding =
        (fun self mb ->
          scoped mb.pmb_loc mb.pmb_attributes;
          default_iterator.module_binding self mb);
      structure_item =
        (fun self si ->
          (match si.pstr_desc with
          | Pstr_attribute attr -> add t ~scope:None attr
          | _ -> ());
          default_iterator.structure_item self si);
      signature_item =
        (fun self si ->
          (match si.psig_desc with
          | Psig_attribute attr -> add t ~scope:None attr
          | _ -> ());
          default_iterator.signature_item self si);
    }
  in
  (match parsed with
  | Source.Structure s -> it.structure it s
  | Source.Signature s -> it.signature it s);
  t.entries <- List.rev t.entries;
  t

let drop t (f : Finding.t) =
  let matching =
    List.filter
      (fun e ->
        List.mem f.Finding.code e.codes
        && e.line_lo <= f.Finding.line
        && f.Finding.line <= e.line_hi)
      t.entries
  in
  List.iter (fun e -> e.used <- true) matching;
  matching <> []

let unused t =
  List.filter_map
    (fun e ->
      if e.used then None
      else
        Some
          (Finding.make ~code:"SA011" (Rule.severity "SA011") ~file:t.file
             ~line:e.attr_line ~col:e.attr_col
             "unused [@sslint.allow \"%s\"]: nothing here fires the code"
             (String.concat " " e.codes)))
    t.entries
