(** One-release parity bridge with the retired regex checker.

    This module is a faithful library port of the line-regex invariants
    [tools/check_sources.ml] used to enforce, mapped onto the SA codes
    that superseded them. It exists for exactly one purpose: asserting
    {b sslint ⊇ check_sources} on the live tree ({!uncovered}) and
    letting the test suite prove the regexes' blind spots against the
    adversarial fixtures. It ships for this release only; once the
    parity test has aged one release, delete it together with this
    notice. *)

type hit = { file : string; line : int; code : string }
(** [code] is the SA code the regex invariant maps to (SA001–SA005). *)

val scan_file : string -> string -> hit list
(** [scan_file path text] applies the ported regexes to [text] exactly
    as the retired checker did (per line, same exemption lists, same
    directory confinement). *)

val scan : string list -> hit list
(** {!scan_file} over the {e library} sources among
    {!Analyze.ocaml_sources} of the given roots — the retired checker
    only ever scanned [lib/], so the parity comparison keeps to the same
    ground. *)

val uncovered : hit list -> Finding.t list -> hit list
(** Regex hits with no AST counterpart, compared at [(file, code)]
    granularity — the AST rule may well place the finding on a different
    line (it points at the identifier, not the line start). Empty means
    sslint subsumes the regex checker on that tree. *)
